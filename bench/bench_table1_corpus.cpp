// Table 1 reproduction: the implementations studied, corpus sizes, and --
// the part the paper demonstrates qualitatively throughout sections 8-9 --
// whether tcpanaly's per-implementation knowledge actually matches traces
// of each implementation.
//
// The paper's corpus is 20,034 sender + 20,043 receiver traces of real
// stacks; ours is a simulated sweep per implementation (loss x delay x
// rate x seed). For every trace we run the full matcher against ALL
// candidate implementations and report:
//   * close-fit rate for the true implementation (tcpanaly "consistent"),
//   * identification rate: the true implementation is among the best
//     close fits (behavioral twins tie, as BSDI/NetBSD genuinely do).
#include <cstdio>
#include <map>

#include "core/matcher.hpp"
#include "corpus/corpus.hpp"
#include "tcp/profiles.hpp"
#include "util/table.hpp"

using namespace tcpanaly;

namespace {

const char* lineage_name(tcp::Lineage lineage) {
  switch (lineage) {
    case tcp::Lineage::kTahoe:
      return "Tahoe";
    case tcp::Lineage::kReno:
      return "Reno";
    case tcp::Lineage::kIndependent:
      return "Indep.";
  }
  return "?";
}

struct RowStats {
  int sender_traces = 0, sender_close = 0, sender_identified = 0;
  int receiver_traces = 0, receiver_close = 0, receiver_identified = 0;
};

}  // namespace

int main() {
  std::printf("== Table 1: TCP implementations studied (simulated corpus) ==\n\n");

  const std::vector<tcp::TcpProfile> candidates = tcp::all_profiles();
  corpus::CorpusOptions copts;
  copts.seeds_per_cell = 1;

  util::TextTable table({"Implementation", "Versions", "Lineage", "#Snd", "close%",
                         "ident%", "#Rcv", "close%", "ident%"});

  for (const auto& impl : tcp::main_study_profiles()) {
    RowStats row;
    for (const auto& entry : corpus::generate_corpus(impl, copts)) {
      if (!entry.result.completed) continue;
      {
        auto match = core::match_implementations(entry.result.sender_trace, candidates);
        ++row.sender_traces;
        for (const auto& fit : match.fits)
          if (fit.profile.name == impl.name && fit.fit == core::FitClass::kClose)
            ++row.sender_close;
        if (match.identifies(impl.name)) ++row.sender_identified;
      }
      {
        auto match = core::match_implementations(entry.result.receiver_trace, candidates);
        ++row.receiver_traces;
        for (const auto& fit : match.fits)
          if (fit.profile.name == impl.name && fit.fit == core::FitClass::kClose)
            ++row.receiver_close;
        if (match.identifies(impl.name)) ++row.receiver_identified;
      }
    }
    auto pct = [](int a, int b) {
      return b ? util::strf("%3.0f%%", 100.0 * a / b) : std::string("-");
    };
    table.add_row({impl.name, impl.versions, lineage_name(impl.lineage),
                   util::strf("%d", row.sender_traces),
                   pct(row.sender_close, row.sender_traces),
                   pct(row.sender_identified, row.sender_traces),
                   util::strf("%d", row.receiver_traces),
                   pct(row.receiver_close, row.receiver_traces),
                   pct(row.receiver_identified, row.receiver_traces)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "paper: 20,034 sender / 20,043 receiver real traces across these rows;\n"
      "       here each row is a %zu-scenario simulated sweep per role.\n"
      "close%% = candidate matching its own traces (tcpanaly 'consistent');\n"
      "ident%% = true implementation among the best close fits (behavioral\n"
      "twins such as BSDI/NetBSD tie, and receiver-side analysis can only\n"
      "separate acking-policy families, as in the paper).\n",
      corpus::CorpusOptions{}.loss_probs.size() *
          corpus::CorpusOptions{}.one_way_delays.size() *
          corpus::CorpusOptions{}.rates.size());
  return 0;
}
