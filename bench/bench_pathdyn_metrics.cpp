// Path-dynamics extension: the analyses tcpanaly grew into for the
// companion packet-dynamics study ([Pa97a]-style, section 10's "future
// work" direction of turning implementation analysis into path analysis).
//
// Three tables, each scored against the simulator's ground truth:
//   A. bottleneck-bandwidth estimation from receiver-side arrival spacing
//      (simplified packet-bunch mode), across a sweep of true rates;
//   B. network reordering measured from aligned trace pairs, across a
//      sweep of injected reordering probabilities;
//   C. network replication and loss from the same alignment.
#include <cstdio>

#include "core/path_metrics.hpp"
#include "tcp/profiles.hpp"
#include "tcp/session.hpp"
#include "util/table.hpp"

using namespace tcpanaly;

namespace {

tcp::SessionConfig base_config(std::uint64_t seed) {
  tcp::SessionConfig cfg = tcp::default_session();
  cfg.sender_profile = tcp::generic_reno();
  cfg.receiver_profile = cfg.sender_profile;
  cfg.seed = seed;
  return cfg;
}

}  // namespace

int main() {
  std::printf("== Path dynamics: bottleneck estimation, reordering, replication ==\n\n");

  // ---- A: bottleneck bandwidth sweep ----
  util::TextTable bw({"true bottleneck", "estimate", "error", "samples", "mode frac"});
  for (double rate : {16'000.0, 32'000.0, 64'000.0, 128'000.0, 256'000.0}) {
    auto cfg = base_config(7);
    cfg.sender.transfer_bytes = 200 * 1024;
    cfg.fwd_path.bottleneck_rate_bytes_per_sec = rate;
    cfg.fwd_path.bottleneck_queue_limit = 20;
    auto r = tcp::run_session(cfg);
    auto est = core::estimate_bottleneck(r.receiver_trace);
    bw.add_row({util::strf("%.0f KB/s", rate / 1000),
                est.samples ? util::strf("%.1f KB/s%s", est.bytes_per_sec / 1000,
                                         est.reliable ? "" : " (?)")
                            : "(none)",
                est.samples ? util::strf("%+.1f%%",
                                         100.0 * (est.bytes_per_sec - rate) / rate)
                            : "-",
                util::strf("%d", est.samples), util::strf("%.2f", est.mode_fraction)});
  }
  // No bottleneck stage: the 1 MB/s local link is the narrowest hop.
  {
    auto cfg = base_config(7);
    cfg.sender.transfer_bytes = 200 * 1024;
    auto r = tcp::run_session(cfg);
    auto est = core::estimate_bottleneck(r.receiver_trace);
    bw.add_row({"1000 KB/s (local link)",
                util::strf("%.1f KB/s%s", est.bytes_per_sec / 1000,
                           est.reliable ? "" : " (?)"),
                util::strf("%+.1f%%",
                           100.0 * (est.bytes_per_sec - 1'000'000.0) / 1'000'000.0),
                util::strf("%d", est.samples), util::strf("%.2f", est.mode_fraction)});
  }
  std::printf("A. bottleneck bandwidth from receiver arrival spacing\n%s\n",
              bw.render().c_str());

  // ---- B: reordering sweep ----
  util::TextTable ro({"injected delay prob", "delayed (truth)", "measured reordered",
                      "matched", "false events on clean pair"});
  for (double p : {0.0, 0.01, 0.03, 0.08}) {
    std::uint64_t delayed = 0, reordered = 0, matched = 0, other = 0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      auto cfg = base_config(seed + 500);
      cfg.fwd_path.reorder_prob = p;
      cfg.fwd_path.reorder_extra = util::Duration::millis(8);
      auto r = tcp::run_session(cfg);
      if (!r.completed) continue;
      auto rep = core::measure_path_dynamics(r.sender_trace, r.receiver_trace);
      delayed += r.fwd_reorder_delayed;
      reordered += rep.reordered;
      matched += rep.matched;
      other += rep.network_duplicates + rep.network_losses;
    }
    ro.add_row({util::strf("%.0f%%", p * 100), util::strf("%llu", (unsigned long long)delayed),
                util::strf("%llu (%.1f%%)", (unsigned long long)reordered,
                           matched ? 100.0 * (double)reordered / (double)matched : 0.0),
                util::strf("%llu", (unsigned long long)matched),
                util::strf("%llu", (unsigned long long)other)});
  }
  std::printf("B. network reordering from aligned trace pairs (10 sessions/row;\n"
              "   measured <= truth since a delayed packet is only 'reordered'\n"
              "   when a close-behind successor overtakes it)\n%s\n",
              ro.render().c_str());

  // ---- C: replication and loss ----
  util::TextTable rl({"impairment", "truth", "measured", "measured<=truth"});
  {
    std::uint64_t truth = 0, meas = 0;
    bool exact = true;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      auto cfg = base_config(seed + 900);
      cfg.fwd_path.dup_prob = 0.02;
      auto r = tcp::run_session(cfg);
      auto rep = core::measure_path_dynamics(r.sender_trace, r.receiver_trace);
      truth += r.fwd_duplicated;
      meas += rep.network_duplicates;
      exact = exact && rep.network_duplicates <= r.fwd_duplicated;
    }
    rl.add_row({"replication 2%", util::strf("%llu", (unsigned long long)truth),
                util::strf("%llu", (unsigned long long)meas), exact ? "yes" : "no"});
  }
  {
    std::uint64_t truth = 0, meas = 0;
    bool exact = true;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      auto cfg = base_config(seed + 1300);
      cfg.fwd_path.loss_prob = 0.03;
      auto r = tcp::run_session(cfg);
      auto rep = core::measure_path_dynamics(r.sender_trace, r.receiver_trace);
      truth += r.fwd_network_drops;
      meas += rep.network_losses;
      exact = exact && rep.network_losses <= r.fwd_network_drops;
    }
    rl.add_row({"loss 3%", util::strf("%llu", (unsigned long long)truth),
                util::strf("%llu", (unsigned long long)meas), exact ? "yes" : "no"});
  }
  std::printf("C. replication and loss from aligned trace pairs (10 sessions each;\n"
              "   truth includes SYN/FIN copies, which data alignment cannot see,\n"
              "   so measured <= truth)\n%s\n",
              rl.render().c_str());

  std::printf(
      "context: the paper's section 10 frames tcpanaly's evolution toward\n"
      "path analysis; the packet-bunch bottleneck mode and the pair-based\n"
      "reordering/replication/loss measures are the published follow-on\n"
      "analyses, validated here against simulator ground truth.\n");
  return 0;
}
