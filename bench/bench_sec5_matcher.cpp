// Sections 5 / 6.1 reproduction: sorting candidate implementations into
// close / imperfect / clearly-incorrect fits.
//
// For one trace of each of three very different senders, the full ranking
// is printed -- response-delay statistics and window violations are the
// discriminators, exactly as tcpanaly uses them to pick a base class when
// adding a new implementation.
//
// The binary also prices the match stage itself: the wall time of
// match_implementations over 8 candidates (one shared trace annotation)
// against a per-candidate loop in which every candidate re-derives the
// trace-dependent facts for itself -- the shape of the pre-annotation
// pipeline. With --json=FILE the rankings, the confusion sweep, and the
// match-stage timings are emitted as one machine-readable document so the
// bench trajectory can be recorded across revisions.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/matcher.hpp"
#include "core/sender_analyzer.hpp"
#include "corpus/corpus.hpp"
#include "report/report.hpp"
#include "tcp/profiles.hpp"
#include "util/table.hpp"

using namespace tcpanaly;

namespace {

using report::Json;

void show_ranking(const char* impl_name, const corpus::ScenarioParams& params,
                  Json& rankings) {
  auto impl = *tcp::find_profile(impl_name);
  auto r = tcp::run_session(corpus::make_session(impl, params));
  auto match = core::match_implementations(r.sender_trace, tcp::all_profiles());
  std::printf("--- true sender: %s (%s) ---\n%s\n", impl_name, params.label().c_str(),
              match.render().c_str());
  Json row = Json::object();
  row.set("true_impl", impl_name);
  row.set("scenario", params.label());
  row.set("best", match.best().profile.name);
  row.set("best_fit", core::to_string(match.best().fit));
  row.set("identified", match.identifies(impl_name));
  rankings.push_back(std::move(row));
}

/// Minimum wall time (microseconds) of `fn` over `reps` runs.
template <typename Fn>
double min_wall_us(int reps, Fn&& fn) {
  double best = 0.0;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(t1 - t0)
            .count();
    if (i == 0 || us < best) best = us;
  }
  return best;
}

/// The match stage at 8 candidates, serial, on one mildly lossy trace:
/// match_implementations (which derives the trace-dependent facts once and
/// shares them) vs a per-candidate analyzer loop (each candidate deriving
/// them afresh -- ~2 full-trace window-cap scans per candidate).
Json time_match_stage() {
  corpus::ScenarioParams params;
  params.loss_prob = 0.01;
  params.one_way_delay = util::Duration::millis(20);
  params.transfer_bytes = 256 * 1024;
  params.seed = 5;
  auto reno = *tcp::find_profile("Generic Reno");
  auto r = tcp::run_session(corpus::make_session(reno, params));
  const trace::Trace& trace = r.sender_trace;

  auto all = tcp::all_profiles();
  const std::vector<tcp::TcpProfile> candidates(all.begin(), all.begin() + 8);
  core::MatchOptions mopts;
  mopts.jobs = 1;  // algorithmic comparison: keep parallelism out of it

  constexpr int kReps = 5;
  const double match_us = min_wall_us(kReps, [&] {
    core::match_implementations(trace, candidates, mopts);
  });
  const double per_candidate_us = min_wall_us(kReps, [&] {
    for (const auto& c : candidates)
      core::SenderAnalyzer(c, mopts.sender).analyze(trace);
  });

  std::printf("--- match-stage wall time (%zu candidates, %zu records, serial) ---\n",
              candidates.size(), trace.size());
  std::printf("match_implementations (shared trace facts): %10.1f us\n", match_us);
  std::printf("per-candidate loop (facts re-derived each):  %10.1f us\n", per_candidate_us);
  std::printf("speedup vs per-candidate: %.2fx\n\n", per_candidate_us / match_us);

  Json j = Json::object();
  j.set("records", trace.size());
  j.set("candidates", candidates.size());
  j.set("reps", kReps);
  j.set("jobs", 1);
  j.set("match_us", match_us);
  j.set("per_candidate_us", per_candidate_us);
  j.set("speedup_vs_per_candidate", per_candidate_us / match_us);
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json FILE]\n", argv[0]);
      return 2;
    }
  }

  std::printf("== Sections 5/6.1: candidate-implementation ranking ==\n\n");

  Json rankings = Json::array();
  corpus::ScenarioParams lossy;
  lossy.loss_prob = 0.02;
  lossy.seed = 17;
  show_ranking("Generic Reno", lossy, rankings);
  show_ranking("Linux 1.0", lossy, rankings);

  corpus::ScenarioParams long_rtt;
  long_rtt.one_way_delay = util::Duration::millis(340);
  long_rtt.seed = 9;
  show_ranking("Solaris 2.4", long_rtt, rankings);

  // Aggregate confusion behavior: how often is each candidate class
  // assigned when matching every implementation's traces?
  std::printf("--- fit-class distribution over one sweep per implementation ---\n");
  util::TextTable table({"true impl", "close", "imperfect", "clearly-incorrect",
                         "true-impl fit"});
  Json confusion = Json::array();
  corpus::CorpusOptions copts;
  copts.seeds_per_cell = 1;
  copts.loss_probs = {0.02};
  copts.one_way_delays = {util::Duration::millis(60)};
  for (const auto& impl : tcp::main_study_profiles()) {
    int close = 0, imperfect = 0, incorrect = 0;
    std::string true_fit = "-";
    for (const auto& entry : corpus::generate_corpus(impl, copts)) {
      if (!entry.result.completed) continue;
      auto match = core::match_implementations(entry.result.sender_trace, tcp::all_profiles());
      for (const auto& fit : match.fits) {
        switch (fit.fit) {
          case core::FitClass::kClose: ++close; break;
          case core::FitClass::kImperfect: ++imperfect; break;
          case core::FitClass::kClearlyIncorrect: ++incorrect; break;
        }
        if (fit.profile.name == impl.name) true_fit = core::to_string(fit.fit);
      }
    }
    table.add_row({impl.name, util::strf("%d", close), util::strf("%d", imperfect),
                   util::strf("%d", incorrect), true_fit});
    Json row = Json::object();
    row.set("true_impl", impl.name);
    row.set("close", close);
    row.set("imperfect", imperfect);
    row.set("clearly_incorrect", incorrect);
    row.set("true_impl_fit", true_fit);
    confusion.push_back(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());

  Json match_stage = time_match_stage();

  std::printf(
      "paper: correct candidates show small response times and no window\n"
      "violations; incorrect candidates show increased response times or\n"
      "violations, letting tcpanaly sort them into close, imperfect, and\n"
      "clearly-incorrect fits (section 6.1). Behavioral twins (e.g.\n"
      "BSDI/NetBSD) legitimately tie as close fits.\n");

  if (!json_path.empty()) {
    Json doc = report::document_header("bench");
    doc.set("bench", "sec5_matcher");
    doc.set("rankings", std::move(rankings));
    doc.set("confusion", std::move(confusion));
    doc.set("match_stage", std::move(match_stage));
    std::ofstream out(json_path);
    out << doc.dump(2) << "\n";
    if (!out.good()) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote bench JSON to %s\n", json_path.c_str());
  }
  return 0;
}
