// Sections 5 / 6.1 reproduction: sorting candidate implementations into
// close / imperfect / clearly-incorrect fits.
//
// For one trace of each of three very different senders, the full ranking
// is printed -- response-delay statistics and window violations are the
// discriminators, exactly as tcpanaly uses them to pick a base class when
// adding a new implementation.
#include <cstdio>

#include "core/matcher.hpp"
#include "corpus/corpus.hpp"
#include "tcp/profiles.hpp"
#include "util/table.hpp"

using namespace tcpanaly;

namespace {

void show_ranking(const char* impl_name, const corpus::ScenarioParams& params) {
  auto impl = *tcp::find_profile(impl_name);
  auto r = tcp::run_session(corpus::make_session(impl, params));
  auto match = core::match_implementations(r.sender_trace, tcp::all_profiles());
  std::printf("--- true sender: %s (%s) ---\n%s\n", impl_name, params.label().c_str(),
              match.render().c_str());
}

}  // namespace

int main() {
  std::printf("== Sections 5/6.1: candidate-implementation ranking ==\n\n");

  corpus::ScenarioParams lossy;
  lossy.loss_prob = 0.02;
  lossy.seed = 17;
  show_ranking("Generic Reno", lossy);
  show_ranking("Linux 1.0", lossy);

  corpus::ScenarioParams long_rtt;
  long_rtt.one_way_delay = util::Duration::millis(340);
  long_rtt.seed = 9;
  show_ranking("Solaris 2.4", long_rtt);

  // Aggregate confusion behavior: how often is each candidate class
  // assigned when matching every implementation's traces?
  std::printf("--- fit-class distribution over one sweep per implementation ---\n");
  util::TextTable table({"true impl", "close", "imperfect", "clearly-incorrect",
                         "true-impl fit"});
  corpus::CorpusOptions copts;
  copts.seeds_per_cell = 1;
  copts.loss_probs = {0.02};
  copts.one_way_delays = {util::Duration::millis(60)};
  for (const auto& impl : tcp::main_study_profiles()) {
    int close = 0, imperfect = 0, incorrect = 0;
    std::string true_fit = "-";
    for (const auto& entry : corpus::generate_corpus(impl, copts)) {
      if (!entry.result.completed) continue;
      auto match = core::match_implementations(entry.result.sender_trace, tcp::all_profiles());
      for (const auto& fit : match.fits) {
        switch (fit.fit) {
          case core::FitClass::kClose: ++close; break;
          case core::FitClass::kImperfect: ++imperfect; break;
          case core::FitClass::kClearlyIncorrect: ++incorrect; break;
        }
        if (fit.profile.name == impl.name) true_fit = core::to_string(fit.fit);
      }
    }
    table.add_row({impl.name, util::strf("%d", close), util::strf("%d", imperfect),
                   util::strf("%d", incorrect), true_fit});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "paper: correct candidates show small response times and no window\n"
      "violations; incorrect candidates show increased response times or\n"
      "violations, letting tcpanaly sort them into close, imperfect, and\n"
      "clearly-incorrect fits (section 6.1). Behavioral twins (e.g.\n"
      "BSDI/NetBSD) legitimately tie as close fits.\n");
  return 0;
}
