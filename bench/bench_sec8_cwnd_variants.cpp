// Section 8.1-8.3 reproduction: the congestion-window rule variations.
//
// Pure window-model ablation (no network): drive each profile's
// WindowModel with a fixed ack schedule and print the cwnd trajectory.
// Visible here:
//   * Eqn 1 vs Eqn 2 -- the +MSS/8 term's super-linear growth in
//     congestion avoidance,
//   * initial ssthresh (huge vs Solaris' 8 segments vs Linux 1.0's 1),
//   * ssthresh cut rounding and minimum clamps,
//   * fast recovery inflation/deflation, with the header-prediction and
//     fencepost deflation bugs.
#include <cstdio>
#include <vector>

#include "tcp/profiles.hpp"
#include "tcp/window_model.hpp"
#include "util/table.hpp"

using namespace tcpanaly;

namespace {
constexpr std::uint32_t kMss = 512;

tcp::WindowModel fresh(const tcp::TcpProfile& p) {
  tcp::WindowModel m(p, kMss, 4);
  m.on_connection_established(/*synack_had_mss=*/true, kMss);
  return m;
}

}  // namespace

int main() {
  std::printf("== Section 8: congestion-window rule variants ==\n\n");

  // ---- growth trajectories ----
  const std::vector<const char*> impls = {"Generic Tahoe", "Generic Reno", "HP/UX",
                                          "Solaris 2.4",   "Linux 1.0"};
  util::TextTable growth({"acks", "Tahoe(Eqn1)", "Reno(Eqn2)", "HP/UX(Eqn1)",
                          "Solaris(ssth=8)", "Linux1.0(ssth=1)"});
  std::vector<tcp::WindowModel> models;
  for (auto* name : impls) models.push_back(fresh(*tcp::find_profile(name)));
  // Force Tahoe/Reno into congestion avoidance at the same point so Eqn 1
  // vs Eqn 2 growth is directly comparable: cut with a 16 KB flight.
  models[0].on_timeout(16 * 1024);
  models[1].on_timeout(16 * 1024);
  models[2].on_timeout(16 * 1024);
  for (int ack = 0; ack <= 120; ++ack) {
    if (ack % 20 == 0) {
      std::vector<std::string> row{util::strf("%d", ack)};
      for (auto& m : models) row.push_back(util::strf("%u", m.cwnd()));
      growth.add_row(std::move(row));
    }
    for (auto& m : models) m.on_new_ack(kMss);
  }
  std::printf("cwnd after N acks (Tahoe/Reno/HP-UX cut to ssthresh=8192 first,\n"
              "so their rows show pure congestion avoidance):\n%s\n",
              growth.render().c_str());

  // ---- ssthresh cut rules ----
  util::TextTable cuts({"flight at loss", "Tahoe", "Reno", "Solaris 2.4", "Linux 1.0"});
  for (std::uint32_t flight : {700u, 1500u, 5000u, 12000u}) {
    std::vector<std::string> row{util::strf("%u", flight)};
    for (auto* name : {"Generic Tahoe", "Generic Reno", "Solaris 2.4", "Linux 1.0"}) {
      auto m = fresh(*tcp::find_profile(name));
      m.on_timeout(flight);
      row.push_back(util::strf("%u", m.ssthresh()));
    }
    cuts.add_row(std::move(row));
  }
  std::printf("ssthresh after a timeout with the given flight (rounding to MSS\n"
              "multiples and minimum clamps differ; Tahoe clamps at 1 MSS):\n%s\n",
              cuts.render().c_str());

  // ---- recovery deflation bugs ----
  util::TextTable rec({"variant", "cwnd before exit", "after exit (normal ack)",
                       "after exit (header-predicted ack)"});
  struct Variant {
    const char* name;
    bool deflate;
    bool fencepost;
  } variants[] = {
      {"correct Reno", true, false},
      {"header-prediction bug", false, false},
      {"fencepost bug", true, true},
  };
  for (const auto& v : variants) {
    tcp::TcpProfile p = tcp::generic_reno();
    p.deflate_cwnd_after_recovery = v.deflate;
    p.fencepost_recovery_bug = v.fencepost;
    auto run = [&](bool header_predicted) {
      auto m = fresh(p);
      for (int i = 0; i < 16; ++i) m.on_new_ack(kMss);  // open to 8704
      m.on_fast_retransmit(m.cwnd());
      for (int i = 0; i < 6; ++i) m.on_dup_ack_in_recovery();
      const std::uint32_t before = m.cwnd();
      m.on_recovery_exit(header_predicted);
      return std::make_pair(before, m.cwnd());
    };
    auto [before_n, after_n] = run(false);
    auto [before_h, after_h] = run(true);
    (void)before_h;
    rec.add_row({v.name, util::strf("%u", before_n), util::strf("%u", after_n),
                 util::strf("%u", after_h)});
  }
  std::printf("fast-recovery exit deflation (the [BP95] bugs, section 8.2/8.3):\n%s\n",
              rec.render().c_str());

  // ---- slow-start test < vs <= ----
  util::TextTable ss({"test", "cwnd==ssthresh step is"});
  for (auto test : {tcp::SlowStartTest::kLess, tcp::SlowStartTest::kLessEqual}) {
    tcp::TcpProfile p = tcp::generic_reno();
    p.ss_test = test;
    auto m = fresh(p);
    m.on_timeout(4096);  // ssthresh 2048, cwnd 512
    while (m.cwnd() < m.ssthresh()) m.on_new_ack(kMss);
    const std::uint32_t at = m.cwnd();
    m.on_new_ack(kMss);
    ss.add_row({test == tcp::SlowStartTest::kLess ? "cwnd <  ssthresh" : "cwnd <= ssthresh",
                util::strf("%u -> %u (%s)", at, m.cwnd(),
                           m.cwnd() - at == kMss ? "slow start" : "cong. avoidance")});
  }
  std::printf("the boundary ack at cwnd == ssthresh (section 8.3):\n%s\n",
              ss.render().c_str());
  return 0;
}
