// Identification confusion matrix: for traces of each TRUE implementation
// (rows), which candidate profiles (columns) rate as close fits?
//
// This extends Table 1's identification result with the full structure the
// paper's lineage analysis implies: behavioral twins (BSDI/NetBSD;
// SunOS/generic Tahoe) tie legitimately; distinct behaviors must separate
// once path conditions exercise their differences. Cells count close fits
// over a mixed sweep (clean / lossy / long-RTT / no-MSS-option peer), so a
// candidate that is indistinguishable only under benign conditions scores
// partial credit rather than full confusion.
#include <cstdio>
#include <vector>

#include "core/matcher.hpp"
#include "tcp/profiles.hpp"
#include "tcp/session.hpp"
#include "util/table.hpp"

using namespace tcpanaly;

namespace {

std::vector<tcp::SessionConfig> scenarios(const tcp::TcpProfile& impl) {
  std::vector<tcp::SessionConfig> out;
  // Clean short-RTT path.
  tcp::SessionConfig clean = tcp::default_session();
  clean.seed = 31;
  out.push_back(clean);
  // Lossy path: exercises recovery (Tahoe vs Reno vs Linux vs Solaris).
  tcp::SessionConfig lossy = tcp::default_session();
  lossy.fwd_path.loss_prob = 0.03;
  lossy.seed = 32;
  out.push_back(lossy);
  // Long-RTT clean path: exercises the RTO schemes.
  tcp::SessionConfig long_rtt = tcp::default_session();
  long_rtt.fwd_path.prop_delay = util::Duration::millis(340);
  long_rtt.rev_path.prop_delay = util::Duration::millis(340);
  long_rtt.seed = 33;
  out.push_back(long_rtt);
  // Peer omitting the MSS option: detonates the Net/3 bug if present.
  tcp::SessionConfig no_mss = tcp::default_session();
  no_mss.receiver.omit_mss_option = true;
  no_mss.seed = 34;
  out.push_back(no_mss);
  for (auto& cfg : out) {
    cfg.sender_profile = impl;
    cfg.receiver_profile = impl;
  }
  return out;
}

std::string short_name(const std::string& name) {
  if (name == "Generic Tahoe") return "Tah";
  if (name == "Generic Reno") return "Ren";
  if (name == "DEC OSF/1") return "OSF";
  if (name == "HP/UX") return "HPX";
  if (name == "Linux 1.0") return "L10";
  if (name == "Linux 2.0") return "L20";
  if (name == "Solaris 2.3") return "S23";
  if (name == "Solaris 2.4") return "S24";
  if (name == "SunOS 4.1") return "Sun";
  if (name == "Trumpet/Winsock") return "Trm";
  if (name == "Windows 95") return "W95";
  if (name == "NetBSD") return "NBD";
  if (name == "BSDI") return "BSD";
  if (name == "IRIX") return "IRX";
  return name.substr(0, 3);
}

}  // namespace

int main() {
  std::printf("== Sender-side identification confusion matrix ==\n\n");
  const auto candidates = tcp::all_profiles();

  std::vector<std::string> headers{"true \\ candidate"};
  for (const auto& c : candidates) headers.push_back(short_name(c.name));
  util::TextTable table(std::move(headers));

  for (const auto& impl : candidates) {
    std::vector<int> close(candidates.size(), 0);
    int runs = 0;
    for (const auto& cfg : scenarios(impl)) {
      auto r = tcp::run_session(cfg);
      if (!r.completed) continue;
      ++runs;
      auto match = core::match_implementations(r.sender_trace, candidates);
      for (const auto& fit : match.fits) {
        if (fit.fit != core::FitClass::kClose) continue;
        for (std::size_t c = 0; c < candidates.size(); ++c)
          if (candidates[c].name == fit.profile.name) ++close[c];
      }
    }
    std::vector<std::string> row{short_name(impl.name)};
    for (std::size_t c = 0; c < candidates.size(); ++c)
      row.push_back(close[c] == 0 ? "." : util::strf("%d", close[c]));
    table.add_row(std::move(row));
    (void)runs;
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "cells: close-fit count over 4 scenarios (clean / 3%% loss / 680 ms RTT\n"
      "/ peer without MSS option). Diagonal should dominate; off-diagonal\n"
      "mass marks behavioral twins (BSDI=NetBSD, SunOS=generic Tahoe,\n"
      "Solaris 2.3=2.4 on sender traces) and benign-condition lookalikes --\n"
      "the same equivalences the paper's lineage table predicts.\n");
  return 0;
}
