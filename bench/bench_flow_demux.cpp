// Multi-connection demultiplexing: per-flow fidelity and bounded footprint,
// measured.
//
// A netsim-interleaved capture of N concurrent connections (distinct
// client endpoints onto one server, staggered starts, mixed loss/delay
// cells) is pushed through the flow demux two ways:
//
//   * fidelity: every per-flow analysis the demux emits must be
//     bit-identical (calibration JSON + full fit table) to analyzing that
//     flow's records in isolation -- the per-flow NDJSON row claim;
//   * boundedness: the demux's peak logical footprint is set by CONCURRENT
//     flows (flow lifetime / start spacing), not by how many flows the
//     capture holds in total. Running the same traffic shape at 4x the
//     flow count must not grow the peak by more than 2x, and the peak must
//     sit well below the sum of the individual flows' builder peaks (what
//     holding every flow to EOF would cost).
//
// scripts/tier1.sh reuses this binary's --write-capture mode to generate
// the 1000-flow capture it feeds through `tcpanaly --batch --max-rss-mb`;
// bench/results/flow_demux.json keeps the reference numbers.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <numeric>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/flow_demux.hpp"
#include "core/json_convert.hpp"
#include "core/stream_analysis.hpp"
#include "corpus/corpus.hpp"
#include "netsim/mix.hpp"
#include "report/report.hpp"
#include "tcp/profiles.hpp"
#include "trace/pcap_io.hpp"
#include "trace/record_source.hpp"
#include "util/mem_tracker.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

using namespace tcpanaly;
using report::Json;

namespace {

double wall_ms(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

std::vector<tcp::TcpProfile> candidates() {
  return {*tcp::find_profile("Generic Reno"), *tcp::find_profile("Generic Tahoe"),
          *tcp::find_profile("Linux 1.0")};
}

core::FlowDemuxOptions demux_options() {
  core::FlowDemuxOptions opts;
  opts.analyze.match.jobs = 1;  // per-flow determinism; parallelism is across flows
  opts.candidates = candidates();
  return opts;
}

/// One string that pins everything a per-flow NDJSON row reports: the full
/// calibration document plus every candidate's (name, penalty, fit class).
std::string analysis_signature(const core::TraceAnalysis& a) {
  std::string sig = core::to_json(a.calibration).dump();
  for (const core::CandidateFit& fit : a.match.fits)
    sig += "|" + fit.profile.name + util::strf(":%.17g:%d", fit.penalty,
                                               static_cast<int>(fit.fit));
  return sig;
}

struct Leg {
  std::size_t flows = 0;
  std::uint64_t records = 0;
  double wall_ms = 0.0;
  core::FlowDemuxStats stats;
  std::uint64_t sum_flow_peaks = 0;  ///< what holding every flow at once would cost
};

/// Run the capture through the demux, render-and-drop like the batch
/// engine does; per-flow signatures land in `out_sigs` keyed by client
/// endpoint when requested.
Leg run_demux(const trace::Trace& capture, std::size_t flows,
              std::unordered_map<std::string, std::string>* out_sigs) {
  Leg leg;
  leg.flows = flows;
  leg.records = capture.size();
  core::FlowDemux demux(demux_options(), [&](core::FlowResult r) {
    leg.sum_flow_peaks += r.peak_bytes;
    if (out_sigs && r.cls == core::FlowClass::kAnalyzable)
      (*out_sigs)[r.first_src.to_string()] = analysis_signature(r.analysis);
  });
  leg.wall_ms = wall_ms([&] {
    trace::InMemorySource source(capture);
    while (auto rec = source.next()) demux.add(*rec);
    demux.finish();
  });
  leg.stats = demux.stats();
  return leg;
}

corpus::FlowMix make_mix(std::size_t flows) {
  corpus::FlowMixOptions mopts;
  mopts.flows = flows;
  return corpus::make_flow_mix(*tcp::find_profile("Generic Reno"), mopts);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string capture_path;
  std::size_t flows = 100;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--flows" && i + 1 < argc) {
      flows = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--write-capture" && i + 1 < argc) {
      capture_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json FILE] [--flows N] [--write-capture FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  if (!capture_path.empty()) {
    // Generator mode for tier-1: just emit the interleaved capture.
    const corpus::FlowMix mix = make_mix(flows);
    trace::write_pcap_file(capture_path, mix.capture);
    std::printf("wrote %zu-flow capture (%zu records) to %s\n", flows,
                mix.capture.size(), capture_path.c_str());
    return 0;
  }

  std::printf("== flow demux: fidelity and bounded footprint ==\n\n");

  // --- fidelity at the base flow count -------------------------------
  const corpus::FlowMix mix = make_mix(flows);
  std::printf("capture: %zu flows interleaved into %zu records\n", flows,
              mix.capture.size());

  // Reference: each flow's records analyzed alone, exactly the
  // analyze_capture_stream path a single-connection capture gets.
  std::vector<std::string> ref_sigs(flows);
  const double ref_wall = wall_ms([&] {
    std::vector<std::size_t> idx(flows);
    std::iota(idx.begin(), idx.end(), 0);
    util::parallel_map(
        idx,
        [&](std::size_t i) {
          trace::InMemorySource source(mix.isolated[i]);
          core::AnalyzeOptions aopts;
          aopts.match.jobs = 1;
          ref_sigs[i] = analysis_signature(
              core::analyze_capture_stream(source, true, candidates(), aopts).analysis);
          return 0;
        },
        0);
  });

  std::unordered_map<std::string, std::string> demux_sigs;
  const Leg base = run_demux(mix.capture, flows, &demux_sigs);

  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < flows; ++i) {
    const std::string client =
        sim::flow_endpoints(static_cast<std::uint32_t>(i)).local.to_string();
    const auto it = demux_sigs.find(client);
    if (it == demux_sigs.end() || it->second != ref_sigs[i]) ++mismatches;
  }
  const bool equivalent = mismatches == 0 && base.stats.flows_analyzed == flows;
  std::printf("per-flow results identical to isolated runs: %s (%zu/%zu flows)\n\n",
              equivalent ? "yes" : "NO", flows - mismatches, flows);

  // --- boundedness at 4x the flow count ------------------------------
  const corpus::FlowMix big_mix = make_mix(flows * 4);
  const Leg big = run_demux(big_mix.capture, flows * 4, nullptr);

  const double peak_ratio = static_cast<double>(big.stats.peak_bytes) /
                            static_cast<double>(std::max<std::uint64_t>(base.stats.peak_bytes, 1));
  const double materialize_factor =
      static_cast<double>(big.sum_flow_peaks) /
      static_cast<double>(std::max<std::uint64_t>(big.stats.peak_bytes, 1));

  util::TextTable table(
      {"flows", "records", "wall ms", "peak logical", "closed", "eof", "sum flow peaks"});
  Json legs = Json::array();
  for (const Leg* leg : {&base, &big}) {
    table.add_row({std::to_string(leg->flows), std::to_string(leg->records),
                   util::strf("%.1f", leg->wall_ms),
                   util::strf("%llu", static_cast<unsigned long long>(leg->stats.peak_bytes)),
                   util::strf("%llu", static_cast<unsigned long long>(leg->stats.closed)),
                   util::strf("%llu", static_cast<unsigned long long>(leg->stats.at_eof)),
                   util::strf("%llu", static_cast<unsigned long long>(leg->sum_flow_peaks))});
    Json row = Json::object();
    row.set("flows", leg->flows);
    row.set("records", leg->records);
    row.set("wall_ms", leg->wall_ms);
    row.set("peak_logical_bytes", leg->stats.peak_bytes);
    row.set("sum_flow_peak_bytes", leg->sum_flow_peaks);
    row.set("flows_analyzed", leg->stats.flows_analyzed);
    row.set("closed", leg->stats.closed);
    row.set("at_eof", leg->stats.at_eof);
    legs.push_back(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("isolated reference wall: %.1f ms (parallel)\n", ref_wall);
  std::printf("peak growth at 4x flows: %.2fx (gate: <= 2x)\n", peak_ratio);
  std::printf("hold-everything cost / demux peak at 4x: %.2fx (gate: >= 2x)\n",
              materialize_factor);
  std::printf("process peak RSS: %.1f MiB (informational; monotonic)\n\n",
              static_cast<double>(util::peak_rss_bytes()) / (1024.0 * 1024.0));

  if (!json_path.empty()) {
    Json doc = report::document_header("bench");
    doc.set("bench", "flow_demux");
    doc.set("flows", flows);
    doc.set("equivalent", equivalent);
    doc.set("mismatches", mismatches);
    doc.set("legs", std::move(legs));
    doc.set("peak_ratio_4x", peak_ratio);
    doc.set("materialize_factor", materialize_factor);
    std::ofstream out(json_path);
    out << doc.dump(2) << "\n";
    if (!out.good()) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote bench JSON to %s\n", json_path.c_str());
  }
  return equivalent && peak_ratio <= 2.0 && materialize_factor >= 2.0 ? 0 : 1;
}
