// Report-emission overhead: what adding --json costs per trace on top of
// the analysis itself. Runs the full pipeline over a generated corpus and
// splits the per-trace wall time into analyze (calibrate + summarize +
// conformance + match), document build (struct -> Json tree), and the two
// serializations (compact NDJSON row, pretty-printed file form), plus the
// emitted sizes. The emission path has to stay noise next to the analysis
// -- at the paper's 40k-trace scale a few ms per trace is an hour.
#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

#include "corpus/corpus.hpp"
#include "report/report.hpp"
#include "tcp/profiles.hpp"
#include "util/table.hpp"

using namespace tcpanaly;

namespace {

double wall_ms(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main() {
  std::printf("== report emission: per-trace document build + serialize cost ==\n\n");

  corpus::CorpusOptions copts;
  copts.seeds_per_cell = 1;  // 3 loss x 3 delay x 2 rate = 18 sessions
  copts.transfer_bytes = 50 * 1024;
  const auto entries = corpus::generate_corpus(tcp::generic_reno(), copts);
  const auto candidates = tcp::main_study_profiles();

  std::vector<report::AnalysisReport> docs(entries.size());
  double analyze_ms = 0.0;
  std::size_t records = 0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const trace::Trace& tr = entries[i].result.sender_trace;
    records += tr.size();
    docs[i].trace.file = "bench_" + std::to_string(i);
    docs[i].trace.records = tr.size();
    docs[i].trace.truth = entries[i].impl_name;
    analyze_ms += wall_ms([&] { report::run_analysis(docs[i], tr, candidates); });
  }

  std::vector<report::Json> trees(docs.size());
  const double build_ms = wall_ms([&] {
    for (std::size_t i = 0; i < docs.size(); ++i) trees[i] = docs[i].to_json();
  });

  std::size_t compact_bytes = 0;
  const double compact_ms = wall_ms([&] {
    for (const auto& t : trees) compact_bytes += t.dump().size();
  });

  std::size_t pretty_bytes = 0;
  const double pretty_ms = wall_ms([&] {
    for (const auto& t : trees) pretty_bytes += t.dump(2).size();
  });

  // Parse-back keeps the round-trip honest and prices the consumer side.
  double parse_ms = wall_ms([&] {
    for (const auto& t : trees) {
      if (!(report::Json::parse(t.dump()) == t)) {
        std::fprintf(stderr, "round-trip divergence\n");
        std::exit(1);
      }
    }
  });

  const double n = static_cast<double>(docs.size());
  util::TextTable table({"stage", "total ms", "per trace ms", "bytes/trace"});
  table.add_row({"analyze (pipeline)", util::strf("%.1f", analyze_ms),
                 util::strf("%.3f", analyze_ms / n), "-"});
  table.add_row({"build Json tree", util::strf("%.1f", build_ms),
                 util::strf("%.3f", build_ms / n), "-"});
  table.add_row({"dump compact", util::strf("%.1f", compact_ms),
                 util::strf("%.3f", compact_ms / n),
                 util::strf("%zu", compact_bytes / docs.size())});
  table.add_row({"dump pretty(2)", util::strf("%.1f", pretty_ms),
                 util::strf("%.3f", pretty_ms / n),
                 util::strf("%zu", pretty_bytes / docs.size())});
  table.add_row({"parse back", util::strf("%.1f", parse_ms),
                 util::strf("%.3f", parse_ms / n), "-"});
  std::printf("%s\n", table.render().c_str());

  const double emit_ms = build_ms + compact_ms;
  std::printf("%zu traces, %zu records; emission (build+compact) is %.1f%% of analysis\n",
              docs.size(), records, 100.0 * emit_ms / analyze_ms);
  return 0;
}
