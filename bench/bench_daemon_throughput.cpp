// tcpanalyd throughput: a capture backlog drained through the daemon's
// work-stealing pool at 1/2/4/8 workers, against the serial baseline of
// running the identical capture jobs in a plain loop.
//
// Three properties are measured, the first two gated by exit code:
//
//   * fidelity: the daemon's NDJSON flow/trace rows (timings aside, which
//     are wall-clock) must be IDENTICAL to the serial baseline's -- same
//     row count, same keys, same field values -- at every worker count;
//   * scaling: with per-capture jobs independent and the claim throttle
//     keeping 2x workers in flight, 4 workers must beat 1 worker by a
//     conservative 1.5x (the checked-in reference shows near-linear);
//   * overhead: the 1-worker daemon -- spool renames, scheduler, NDJSON
//     writer and all -- is compared against the bare serial loop, gated
//     loosely at 2x (reference shows ~1.1x).
//
// bench/results/daemon_throughput.json keeps the reference numbers from a
// 1000-capture run.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "corpus/corpus.hpp"
#include "daemon/capture_job.hpp"
#include "daemon/daemon.hpp"
#include "report/report.hpp"
#include "tcp/profiles.hpp"
#include "trace/pcap_io.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

using namespace tcpanaly;
using report::Json;

namespace {

namespace fs = std::filesystem;

double wall_ms(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

std::vector<tcp::TcpProfile> candidates() {
  return {*tcp::find_profile("Generic Reno"), *tcp::find_profile("Generic Tahoe")};
}

std::string spool_name(std::size_t i) {
  return "cap" + std::to_string(i) + ".pcap";
}

/// Normalize one flow/trace document for comparison: drop the wall-clock
/// timings section, keep everything else byte-exact.
std::string normalize(Json doc) {
  doc.remove("timings");
  return doc.dump();
}

/// The serial baseline's rows, sorted (the daemon reports in completion
/// order, the comparison must not care).
std::vector<std::string> serial_rows(const fs::path& capture, std::size_t captures,
                                     const daemon::CaptureJobOptions& jopts,
                                     double* out_wall_ms) {
  std::vector<std::string> rows;
  *out_wall_ms = wall_ms([&] {
    for (std::size_t i = 0; i < captures; ++i) {
      const auto res = daemon::run_capture_job({capture, spool_name(i)}, jopts);
      for (const auto& fr : res.flow_rows) rows.push_back(normalize(fr.to_json()));
      rows.push_back(normalize(res.trace.to_json()));
    }
  });
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::vector<std::string> ndjson_rows(const fs::path& out_path) {
  std::vector<std::string> rows;
  std::ifstream in(out_path);
  std::string line;
  while (std::getline(in, line)) {
    Json doc = Json::parse(line);
    const Json* type = doc.find("type");
    if (type && type->as_string() == "daemon_stats") continue;
    rows.push_back(normalize(std::move(doc)));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

struct Leg {
  unsigned workers = 0;
  double wall = 0.0;
  bool identical = false;
  std::uint64_t stolen = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::size_t captures = 200;
  std::size_t flows = 20;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--captures" && i + 1 < argc) {
      captures = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--flows" && i + 1 < argc) {
      flows = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else {
      std::fprintf(stderr, "usage: %s [--json FILE] [--captures N] [--flows F]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf("== daemon throughput: %zu captures x %zu flows ==\n", captures, flows);
  std::printf("hardware concurrency: %u\n\n", util::default_jobs());

  const fs::path dir = fs::temp_directory_path() / "tcpanaly_bench_daemon";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const fs::path capture = dir / "mix.pcap";
  {
    corpus::FlowMixOptions mopts;
    mopts.flows = flows;
    trace::write_pcap_file(
        capture.string(),
        corpus::make_flow_mix(*tcp::find_profile("Generic Reno"), mopts).capture);
  }

  daemon::CaptureJobOptions jopts;
  jopts.candidates = candidates();
  jopts.analyze.match.jobs = 1;
  double serial_wall = 0.0;
  const auto baseline = serial_rows(capture, captures, jopts, &serial_wall);
  std::printf("serial baseline: %.1f ms (%zu rows)\n\n", serial_wall, baseline.size());

  util::TextTable table({"workers", "wall ms", "speedup vs serial", "stolen", "identical"});
  std::vector<Leg> legs;
  bool all_identical = true;
  for (unsigned workers : {1u, 2u, 4u, 8u}) {
    const fs::path spool = dir / ("spool_w" + std::to_string(workers));
    fs::create_directories(spool);
    for (std::size_t i = 0; i < captures; ++i) {
      std::error_code ec;
      fs::create_hard_link(capture, spool / spool_name(i), ec);
      if (ec) fs::copy_file(capture, spool / spool_name(i));
    }
    const fs::path out = dir / ("out_w" + std::to_string(workers) + ".ndjson");

    daemon::DaemonOptions opts;
    opts.spool_dirs = {spool};
    opts.out_path = out.string();
    opts.jobs = static_cast<int>(workers);
    opts.max_rss_mb = 1024;
    opts.poll_ms = 20;
    opts.stats_interval_s = 0;
    opts.exit_when_drained = true;
    opts.candidates = candidates();
    daemon::Daemon d(std::move(opts));

    Leg leg;
    leg.workers = workers;
    int rc = -1;
    leg.wall = wall_ms([&] { rc = d.run(); });
    leg.stolen = d.snapshot().tasks_stolen;
    leg.identical = rc == 0 && ndjson_rows(out) == baseline;
    all_identical = all_identical && leg.identical;
    table.add_row({std::to_string(workers), util::strf("%.1f", leg.wall),
                   util::strf("%.2fx", serial_wall / leg.wall),
                   std::to_string(static_cast<unsigned long long>(leg.stolen)),
                   leg.identical ? "yes" : "NO"});
    legs.push_back(leg);
  }
  std::printf("%s\n", table.render().c_str());

  const double speedup_4v1 = legs[0].wall / legs[2].wall;
  const double overhead_1w = legs[0].wall / serial_wall;
  std::printf("daemon output identical to serial baseline: %s\n",
              all_identical ? "yes" : "NO");
  std::printf("4-worker speedup over 1 worker: %.2fx (gate: >= 1.5x)\n", speedup_4v1);
  std::printf("1-worker daemon overhead vs bare loop: %.2fx (gate: <= 2x)\n\n",
              overhead_1w);

  // The scaling gates only bind where the hardware can express them: on a
  // single core the run loop itself contends with the lone worker, and
  // extra workers can only overlap I/O, not computation.
  const bool scaling_ok = util::default_jobs() < 4 || speedup_4v1 >= 1.5;
  const bool overhead_ok = util::default_jobs() < 2 || overhead_1w <= 2.0;

  if (!json_path.empty()) {
    Json doc = report::document_header("bench");
    doc.set("bench", "daemon_throughput");
    doc.set("hardware_concurrency", util::default_jobs());
    doc.set("captures", captures);
    doc.set("flows_per_capture", flows);
    doc.set("rows", baseline.size());
    doc.set("serial_wall_ms", serial_wall);
    doc.set("identical", all_identical);
    Json jlegs = Json::array();
    for (const Leg& leg : legs) {
      Json row = Json::object();
      row.set("workers", leg.workers);
      row.set("wall_ms", leg.wall);
      row.set("speedup_vs_serial", serial_wall / leg.wall);
      row.set("tasks_stolen", leg.stolen);
      row.set("identical", leg.identical);
      jlegs.push_back(std::move(row));
    }
    doc.set("legs", std::move(jlegs));
    doc.set("speedup_4w_vs_1w", speedup_4v1);
    doc.set("overhead_1w_vs_serial", overhead_1w);
    std::ofstream out(json_path);
    out << doc.dump(2) << "\n";
    if (!out.good()) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote bench JSON to %s\n", json_path.c_str());
  }
  fs::remove_all(dir);
  return all_identical && scaling_ok && overhead_ok ? 0 : 1;
}
