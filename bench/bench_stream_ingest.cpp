// Streaming vs materialized ingestion: the bounded-memory claim, measured.
//
// A large retransmission-free bulk transfer is written to a pcap file,
// then analyzed two ways:
//
//   * materialized: read_pcap_file builds the whole record vector, then
//     the offline pipeline (AnnotatedTrace + the section-3 calibration
//     detectors) runs over it -- peak logical footprint grows with the
//     trace;
//   * streaming: open_capture_source feeds a kBounded AnnotationBuilder
//     record by record -- nothing per-record is retained, so the peak is
//     set by the epsilon-scale detector windows, not the trace length.
//
// Both paths must reach identical conclusions (diff_stream_summary is the
// oracle); given that, the interesting numbers are wall clock and peak
// logical bytes at 1 worker and at 8 concurrent workers (the batch
// engine's shape). scripts/tier1.sh gates on the streaming path keeping a
// >= 4x peak-footprint reduction; bench/results/stream_ingest.json keeps
// the reference numbers.
//
// A second section measures raw ingestion throughput -- records/sec and
// cycles/record pulling every record out of a large header-snaplen capture
// (the tcpdump-style traces the paper's analyzer was built for) three
// ways: the istream parser record by record, the mmap parser record by
// record, and the mmap parser through next_batch. The three legs must
// agree record for record (a running fold over the decoded fields is
// compared); tier1.sh gates the batched-mmap speedup over istream.
#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <numeric>
#include <string>
#include <vector>

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

#include "core/annotations.hpp"
#include "core/calibration.hpp"
#include "core/conformance.hpp"
#include "core/stream_analysis.hpp"
#include "corpus/corpus.hpp"
#include "report/report.hpp"
#include "tcp/profiles.hpp"
#include "tcp/session.hpp"
#include "trace/mmap_source.hpp"
#include "trace/pcap_io.hpp"
#include "trace/record_source.hpp"
#include "util/mem_tracker.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

using namespace tcpanaly;
using report::Json;

namespace {

double wall_ms(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// Logical bytes the materialized pipeline holds at its peak: the full
/// record vector plus the annotation's per-record note and its cap-event
/// index. Counted the same way the builder's MemTracker counts itself.
std::uint64_t materialized_bytes(const trace::Trace& tr, const core::AnnotatedTrace& ann) {
  return tr.size() * sizeof(trace::PacketRecord) +
         ann.size() * sizeof(core::RecordNote) +
         ann.send_events().size() * sizeof(core::SendEvent) +
         ann.ack_frontier().size() * sizeof(core::AckEvent);
}

struct Leg {
  double wall_ms = 0.0;
  std::uint64_t peak_bytes = 0;
};

/// `jobs` concurrent materialized analyses of the same file; a shared
/// tracker sees every worker's footprint so the peak reflects what a batch
/// run at this width would actually hold at once.
Leg run_materialized(const std::string& path, int jobs) {
  util::MemTracker mem;
  std::vector<int> lanes(static_cast<std::size_t>(jobs));
  Leg leg;
  leg.wall_ms = wall_ms([&] {
    util::parallel_map(
        lanes,
        [&](int) {
          const trace::PcapReadResult loaded = trace::read_pcap_file(path);
          const core::AnnotatedTrace ann(loaded.trace, {util::Duration::millis(30)});
          mem.add(materialized_bytes(loaded.trace, ann));
          (void)core::detect_time_travel(loaded.trace);
          (void)core::detect_measurement_duplicates(ann);
          (void)core::detect_resequencing(ann);
          (void)core::detect_filter_drops(ann);
          // The streaming side's finish_summary() includes the conformance
          // vector, and the equivalence oracle compares it -- the offline
          // pipeline must do the same work to reach the same conclusions.
          (void)core::check_conformance(loaded.trace);
          mem.sub(materialized_bytes(loaded.trace, ann));
          return 0;
        },
        jobs);
  });
  leg.peak_bytes = mem.peak();
  return leg;
}

/// Same shape, streaming: every worker pulls the file through a kBounded
/// builder reporting into the shared tracker.
Leg run_streaming(const std::string& path, int jobs) {
  util::MemTracker mem;
  std::vector<int> lanes(static_cast<std::size_t>(jobs));
  Leg leg;
  leg.wall_ms = wall_ms([&] {
    util::parallel_map(
        lanes,
        [&](int) {
          std::ifstream f(path, std::ios::binary);
          auto source = trace::open_capture_source(f);
          core::AnnotationBuilder::Options bopts;
          bopts.mode = core::AnnotationBuilder::Mode::kBounded;
          bopts.cap_graces = {util::Duration::millis(30)};
          bopts.mem = &mem;
          core::AnnotationBuilder builder(std::move(bopts));
          while (auto rec = source->next()) builder.add(*rec);
          (void)builder.finish_summary();
          return 0;
        },
        jobs);
  });
  leg.peak_bytes = mem.peak();
  return leg;
}

// ---------------------------------------------------- ingestion throughput

/// Monotonic cycle counter for cycles/record: TSC on x86-64, the generic
/// counter-timer on aarch64, absent elsewhere (reported as "none" and the
/// cycle columns stay 0 -- the records/sec gate does not depend on it).
#if defined(__x86_64__)
std::uint64_t cycles_now() { return __rdtsc(); }
constexpr const char* kCycleSource = "rdtsc";
#elif defined(__aarch64__)
std::uint64_t cycles_now() {
  std::uint64_t v;
  asm volatile("mrs %0, cntvct_el0" : "=r"(v));
  return v;
}
constexpr const char* kCycleSource = "cntvct";
#else
std::uint64_t cycles_now() { return 0; }
constexpr const char* kCycleSource = "none";
#endif

struct IngestLeg {
  double wall_ms = 0.0;
  std::uint64_t cycles = 0;
  std::size_t records = 0;
  std::uint64_t fold = 0;  // order-sensitive digest of the decoded fields
};

/// Fold a record into the leg's running digest: cheap enough not to skew
/// the measurement, dependent on every hot decoded field so the compiler
/// cannot discard the drain and the three legs are pinned to identical
/// record sequences.
void fold_record(IngestLeg& leg, const trace::PacketRecord& rec) {
  ++leg.records;
  leg.fold = leg.fold * 1099511628211ull ^ rec.tcp.seq ^ rec.tcp.ack ^
             rec.tcp.payload_len ^ static_cast<std::uint64_t>(rec.src.port) ^
             static_cast<std::uint64_t>(rec.timestamp.count());
}

IngestLeg time_drain(const std::function<void(IngestLeg&)>& drain) {
  IngestLeg best;
  for (int rep = 0; rep < 3; ++rep) {  // best-of-3: page cache warm after rep 0
    IngestLeg leg;
    const std::uint64_t c0 = cycles_now();
    leg.wall_ms = wall_ms([&] { drain(leg); });
    leg.cycles = cycles_now() - c0;
    if (rep == 0 || leg.wall_ms < best.wall_ms) best = leg;
  }
  return best;
}

IngestLeg ingest_istream(const std::string& path) {
  return time_drain([&](IngestLeg& leg) {
    std::ifstream f(path, std::ios::binary);
    auto source = trace::open_capture_source(f);
    while (auto rec = source->next()) fold_record(leg, *rec);
  });
}

IngestLeg ingest_mmap(const std::string& path) {
  return time_drain([&](IngestLeg& leg) {
    auto source = trace::open_capture_source(path);
    while (auto rec = source->next()) fold_record(leg, *rec);
  });
}

IngestLeg ingest_mmap_batched(const std::string& path) {
  return time_drain([&](IngestLeg& leg) {
    auto source = trace::open_capture_source(path);
    std::array<trace::PacketRecord, trace::kRecordBatch> batch;
    while (const std::size_t got = source->next_batch(batch))
      for (std::size_t i = 0; i < got; ++i) fold_record(leg, batch[i]);
  });
}

double records_per_sec(const IngestLeg& leg) {
  return static_cast<double>(leg.records) / (leg.wall_ms / 1000.0);
}

double cycles_per_record(const IngestLeg& leg) {
  return leg.records ? static_cast<double>(leg.cycles) / static_cast<double>(leg.records)
                     : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::uint32_t transfer = 4 * 1024 * 1024;
  std::uint32_t ingest_transfer = 40 * 1024 * 1024;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--transfer" && i + 1 < argc) {
      transfer = static_cast<std::uint32_t>(std::atoll(argv[++i]));
    } else if (arg == "--ingest-transfer" && i + 1 < argc) {
      ingest_transfer = static_cast<std::uint32_t>(std::atoll(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json FILE] [--transfer BYTES] "
                   "[--ingest-transfer BYTES]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf("== streaming vs materialized ingestion ==\n\n");

  // A loss-free bulk transfer: every byte sent once, so the record count
  // (and with it the materialized footprint) scales directly with size.
  corpus::ScenarioParams p;
  p.loss_prob = 0.0;
  p.transfer_bytes = transfer;
  p.rate_bytes_per_sec = 8'000'000.0;
  p.seed = 7;
  const tcp::SessionResult session =
      tcp::run_session(corpus::make_session(*tcp::find_profile("Generic Reno"), p));
  const trace::Trace& tr = session.sender_trace;

  const std::string path =
      (std::filesystem::temp_directory_path() / "tcpanaly_stream_ingest.pcap").string();
  trace::write_pcap_file(path, tr);
  const std::uint64_t file_bytes = std::filesystem::file_size(path);
  std::printf("trace: %zu records, %.1f MiB on disk\n\n", tr.size(),
              static_cast<double>(file_bytes) / (1024.0 * 1024.0));

  // Equivalence first: the comparison is only meaningful if the streaming
  // pass reaches exactly the offline pipeline's conclusions.
  std::string divergence;
  {
    const trace::PcapReadResult loaded = trace::read_pcap_file(path);
    std::ifstream f(path, std::ios::binary);
    auto source = trace::open_capture_source(f);
    core::AnnotationBuilder::Options bopts;
    bopts.mode = core::AnnotationBuilder::Mode::kBounded;
    core::AnnotationBuilder builder(std::move(bopts));
    while (auto rec = source->next()) builder.add(*rec);
    divergence = core::diff_stream_summary(builder.finish_summary(), loaded.trace);
  }
  if (!divergence.empty()) {
    std::fprintf(stderr, "streaming pass DIVERGES from offline pipeline: %s\n",
                 divergence.c_str());
    std::filesystem::remove(path);
    return 1;
  }
  std::printf("streaming summary identical to offline pipeline: yes\n\n");

  util::TextTable table({"mode", "jobs", "wall ms", "peak logical", "reduction"});
  Json legs = Json::array();
  double reduction_min = 1e18;
  double wall_ratio_max = 0.0;
  for (const int jobs : {1, 8}) {
    // Warm the page cache so neither leg pays the first cold read.
    Leg mat = run_materialized(path, jobs);
    mat = run_materialized(path, jobs);
    Leg str = run_streaming(path, jobs);
    str = run_streaming(path, jobs);
    const double reduction = static_cast<double>(mat.peak_bytes) /
                             static_cast<double>(std::max<std::uint64_t>(str.peak_bytes, 1));
    const double wall_ratio = str.wall_ms / mat.wall_ms;
    reduction_min = std::min(reduction_min, reduction);
    wall_ratio_max = std::max(wall_ratio_max, wall_ratio);
    table.add_row({"materialized", std::to_string(jobs), util::strf("%.1f", mat.wall_ms),
                   util::strf("%llu", static_cast<unsigned long long>(mat.peak_bytes)),
                   "1.00x"});
    table.add_row({"streaming", std::to_string(jobs), util::strf("%.1f", str.wall_ms),
                   util::strf("%llu", static_cast<unsigned long long>(str.peak_bytes)),
                   util::strf("%.2fx", reduction)});
    for (const char* mode : {"materialized", "streaming"}) {
      const Leg& leg = std::strcmp(mode, "streaming") == 0 ? str : mat;
      Json row = Json::object();
      row.set("mode", mode);
      row.set("jobs", jobs);
      row.set("wall_ms", leg.wall_ms);
      row.set("peak_logical_bytes", leg.peak_bytes);
      legs.push_back(std::move(row));
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("minimum peak-footprint reduction: %.2fx (gate: >= 4x)\n", reduction_min);
  std::printf("worst streaming/materialized wall ratio: %.2f\n", wall_ratio_max);
  std::printf("process peak RSS: %.1f MiB (informational; monotonic)\n\n",
              static_cast<double>(util::peak_rss_bytes()) / (1024.0 * 1024.0));

  std::filesystem::remove(path);

  // ------------------------------------------------- ingestion throughput
  // A bigger loss-free transfer written header-only (the classic tcpdump
  // vantage: snaplen 96 keeps all three headers and drops the payload), so
  // the legs measure ingestion itself rather than payload checksumming --
  // which a header-only capture never performs on either path.
  std::printf("== ingestion throughput (istream vs mmap vs batched mmap) ==\n\n");
  corpus::ScenarioParams ip = p;
  ip.transfer_bytes = ingest_transfer;
  const tcp::SessionResult ingest_session =
      tcp::run_session(corpus::make_session(*tcp::find_profile("Generic Reno"), ip));
  const trace::Trace& itr = ingest_session.sender_trace;
  const std::string ingest_path =
      (std::filesystem::temp_directory_path() / "tcpanaly_ingest_throughput.pcap")
          .string();
  trace::PcapWriteOptions wopts;
  wopts.snaplen = 96;
  trace::write_pcap_file(ingest_path, itr, wopts);
  const std::uint64_t ingest_bytes = std::filesystem::file_size(ingest_path);
  std::printf("trace: %zu records, %.1f MiB on disk (snaplen %u)\n\n", itr.size(),
              static_cast<double>(ingest_bytes) / (1024.0 * 1024.0), wopts.snaplen);

  const IngestLeg leg_istream = ingest_istream(ingest_path);
  const IngestLeg leg_mmap = ingest_mmap(ingest_path);
  const IngestLeg leg_batched = ingest_mmap_batched(ingest_path);
  std::filesystem::remove(ingest_path);

  const bool ingest_identical = leg_istream.records == leg_mmap.records &&
                                leg_istream.records == leg_batched.records &&
                                leg_istream.fold == leg_mmap.fold &&
                                leg_istream.fold == leg_batched.fold;
  if (!ingest_identical) {
    std::fprintf(stderr, "ingest legs DIVERGED: %zu/%zu/%zu records\n",
                 leg_istream.records, leg_mmap.records, leg_batched.records);
    return 1;
  }
  const double speedup_mmap = records_per_sec(leg_mmap) / records_per_sec(leg_istream);
  const double speedup_batched =
      records_per_sec(leg_batched) / records_per_sec(leg_istream);

  util::TextTable itable(
      {"mode", "wall ms", "records/sec", "cycles/record", "speedup"});
  struct {
    const char* mode;
    const IngestLeg& leg;
    double speedup;
  } irows[] = {{"istream", leg_istream, 1.0},
               {"mmap", leg_mmap, speedup_mmap},
               {"mmap+batch", leg_batched, speedup_batched}};
  Json ingest_legs = Json::array();
  for (const auto& r : irows) {
    itable.add_row({r.mode, util::strf("%.1f", r.leg.wall_ms),
                    util::strf("%.0f", records_per_sec(r.leg)),
                    util::strf("%.0f", cycles_per_record(r.leg)),
                    util::strf("%.2fx", r.speedup)});
    Json row = Json::object();
    row.set("mode", r.mode);
    row.set("wall_ms", r.leg.wall_ms);
    row.set("records_per_sec", records_per_sec(r.leg));
    row.set("cycles_per_record", cycles_per_record(r.leg));
    ingest_legs.push_back(std::move(row));
  }
  std::printf("%s\n", itable.render().c_str());
  std::printf("all legs decode identical records: yes\n");
  std::printf("batched-mmap speedup over istream: %.2fx (tier1 gate: >= 3x on >= 4-core hosts)\n\n",
              speedup_batched);

  if (!json_path.empty()) {
    Json doc = report::document_header("bench");
    doc.set("bench", "stream_ingest");
    doc.set("records", tr.size());
    doc.set("file_bytes", file_bytes);
    doc.set("equivalent", true);
    doc.set("legs", std::move(legs));
    doc.set("reduction_min", reduction_min);
    doc.set("wall_ratio_max", wall_ratio_max);
    Json ingest = Json::object();
    ingest.set("records", itr.size());
    ingest.set("file_bytes", ingest_bytes);
    ingest.set("snaplen", wopts.snaplen);
    ingest.set("cycle_source", kCycleSource);
    ingest.set("identical", ingest_identical);
    ingest.set("legs", std::move(ingest_legs));
    ingest.set("speedup_mmap_vs_istream", speedup_mmap);
    ingest.set("speedup_mmap_batched_vs_istream", speedup_batched);
    doc.set("ingest", std::move(ingest));
    std::ofstream out(json_path);
    out << doc.dump(2) << "\n";
    if (!out.good()) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote bench JSON to %s\n", json_path.c_str());
  }
  return reduction_min >= 4.0 ? 0 : 1;
}
