// Streaming vs materialized ingestion: the bounded-memory claim, measured.
//
// A large retransmission-free bulk transfer is written to a pcap file,
// then analyzed two ways:
//
//   * materialized: read_pcap_file builds the whole record vector, then
//     the offline pipeline (AnnotatedTrace + the section-3 calibration
//     detectors) runs over it -- peak logical footprint grows with the
//     trace;
//   * streaming: open_capture_source feeds a kBounded AnnotationBuilder
//     record by record -- nothing per-record is retained, so the peak is
//     set by the epsilon-scale detector windows, not the trace length.
//
// Both paths must reach identical conclusions (diff_stream_summary is the
// oracle); given that, the interesting numbers are wall clock and peak
// logical bytes at 1 worker and at 8 concurrent workers (the batch
// engine's shape). scripts/tier1.sh gates on the streaming path keeping a
// >= 4x peak-footprint reduction; bench/results/stream_ingest.json keeps
// the reference numbers.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <numeric>
#include <string>
#include <vector>

#include "core/annotations.hpp"
#include "core/calibration.hpp"
#include "core/stream_analysis.hpp"
#include "corpus/corpus.hpp"
#include "report/report.hpp"
#include "tcp/profiles.hpp"
#include "tcp/session.hpp"
#include "trace/pcap_io.hpp"
#include "trace/record_source.hpp"
#include "util/mem_tracker.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

using namespace tcpanaly;
using report::Json;

namespace {

double wall_ms(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// Logical bytes the materialized pipeline holds at its peak: the full
/// record vector plus the annotation's per-record note and its cap-event
/// index. Counted the same way the builder's MemTracker counts itself.
std::uint64_t materialized_bytes(const trace::Trace& tr, const core::AnnotatedTrace& ann) {
  return tr.size() * sizeof(trace::PacketRecord) +
         ann.size() * sizeof(core::RecordNote) +
         ann.send_events().size() * sizeof(core::SendEvent) +
         ann.ack_frontier().size() * sizeof(core::AckEvent);
}

struct Leg {
  double wall_ms = 0.0;
  std::uint64_t peak_bytes = 0;
};

/// `jobs` concurrent materialized analyses of the same file; a shared
/// tracker sees every worker's footprint so the peak reflects what a batch
/// run at this width would actually hold at once.
Leg run_materialized(const std::string& path, int jobs) {
  util::MemTracker mem;
  std::vector<int> lanes(static_cast<std::size_t>(jobs));
  Leg leg;
  leg.wall_ms = wall_ms([&] {
    util::parallel_map(
        lanes,
        [&](int) {
          const trace::PcapReadResult loaded = trace::read_pcap_file(path);
          const core::AnnotatedTrace ann(loaded.trace, {util::Duration::millis(30)});
          mem.add(materialized_bytes(loaded.trace, ann));
          (void)core::detect_time_travel(loaded.trace);
          (void)core::detect_measurement_duplicates(ann);
          (void)core::detect_resequencing(ann);
          (void)core::detect_filter_drops(ann);
          mem.sub(materialized_bytes(loaded.trace, ann));
          return 0;
        },
        jobs);
  });
  leg.peak_bytes = mem.peak();
  return leg;
}

/// Same shape, streaming: every worker pulls the file through a kBounded
/// builder reporting into the shared tracker.
Leg run_streaming(const std::string& path, int jobs) {
  util::MemTracker mem;
  std::vector<int> lanes(static_cast<std::size_t>(jobs));
  Leg leg;
  leg.wall_ms = wall_ms([&] {
    util::parallel_map(
        lanes,
        [&](int) {
          std::ifstream f(path, std::ios::binary);
          auto source = trace::open_capture_source(f);
          core::AnnotationBuilder::Options bopts;
          bopts.mode = core::AnnotationBuilder::Mode::kBounded;
          bopts.cap_graces = {util::Duration::millis(30)};
          bopts.mem = &mem;
          core::AnnotationBuilder builder(std::move(bopts));
          while (auto rec = source->next()) builder.add(*rec);
          (void)builder.finish_summary();
          return 0;
        },
        jobs);
  });
  leg.peak_bytes = mem.peak();
  return leg;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::uint32_t transfer = 4 * 1024 * 1024;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--transfer" && i + 1 < argc) {
      transfer = static_cast<std::uint32_t>(std::atoll(argv[++i]));
    } else {
      std::fprintf(stderr, "usage: %s [--json FILE] [--transfer BYTES]\n", argv[0]);
      return 2;
    }
  }

  std::printf("== streaming vs materialized ingestion ==\n\n");

  // A loss-free bulk transfer: every byte sent once, so the record count
  // (and with it the materialized footprint) scales directly with size.
  corpus::ScenarioParams p;
  p.loss_prob = 0.0;
  p.transfer_bytes = transfer;
  p.rate_bytes_per_sec = 8'000'000.0;
  p.seed = 7;
  const tcp::SessionResult session =
      tcp::run_session(corpus::make_session(*tcp::find_profile("Generic Reno"), p));
  const trace::Trace& tr = session.sender_trace;

  const std::string path =
      (std::filesystem::temp_directory_path() / "tcpanaly_stream_ingest.pcap").string();
  trace::write_pcap_file(path, tr);
  const std::uint64_t file_bytes = std::filesystem::file_size(path);
  std::printf("trace: %zu records, %.1f MiB on disk\n\n", tr.size(),
              static_cast<double>(file_bytes) / (1024.0 * 1024.0));

  // Equivalence first: the comparison is only meaningful if the streaming
  // pass reaches exactly the offline pipeline's conclusions.
  std::string divergence;
  {
    const trace::PcapReadResult loaded = trace::read_pcap_file(path);
    std::ifstream f(path, std::ios::binary);
    auto source = trace::open_capture_source(f);
    core::AnnotationBuilder::Options bopts;
    bopts.mode = core::AnnotationBuilder::Mode::kBounded;
    core::AnnotationBuilder builder(std::move(bopts));
    while (auto rec = source->next()) builder.add(*rec);
    divergence = core::diff_stream_summary(builder.finish_summary(), loaded.trace);
  }
  if (!divergence.empty()) {
    std::fprintf(stderr, "streaming pass DIVERGES from offline pipeline: %s\n",
                 divergence.c_str());
    std::filesystem::remove(path);
    return 1;
  }
  std::printf("streaming summary identical to offline pipeline: yes\n\n");

  util::TextTable table({"mode", "jobs", "wall ms", "peak logical", "reduction"});
  Json legs = Json::array();
  double reduction_min = 1e18;
  double wall_ratio_max = 0.0;
  for (const int jobs : {1, 8}) {
    // Warm the page cache so neither leg pays the first cold read.
    Leg mat = run_materialized(path, jobs);
    mat = run_materialized(path, jobs);
    Leg str = run_streaming(path, jobs);
    str = run_streaming(path, jobs);
    const double reduction = static_cast<double>(mat.peak_bytes) /
                             static_cast<double>(std::max<std::uint64_t>(str.peak_bytes, 1));
    const double wall_ratio = str.wall_ms / mat.wall_ms;
    reduction_min = std::min(reduction_min, reduction);
    wall_ratio_max = std::max(wall_ratio_max, wall_ratio);
    table.add_row({"materialized", std::to_string(jobs), util::strf("%.1f", mat.wall_ms),
                   util::strf("%llu", static_cast<unsigned long long>(mat.peak_bytes)),
                   "1.00x"});
    table.add_row({"streaming", std::to_string(jobs), util::strf("%.1f", str.wall_ms),
                   util::strf("%llu", static_cast<unsigned long long>(str.peak_bytes)),
                   util::strf("%.2fx", reduction)});
    for (const char* mode : {"materialized", "streaming"}) {
      const Leg& leg = std::strcmp(mode, "streaming") == 0 ? str : mat;
      Json row = Json::object();
      row.set("mode", mode);
      row.set("jobs", jobs);
      row.set("wall_ms", leg.wall_ms);
      row.set("peak_logical_bytes", leg.peak_bytes);
      legs.push_back(std::move(row));
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("minimum peak-footprint reduction: %.2fx (gate: >= 4x)\n", reduction_min);
  std::printf("worst streaming/materialized wall ratio: %.2f\n", wall_ratio_max);
  std::printf("process peak RSS: %.1f MiB (informational; monotonic)\n\n",
              static_cast<double>(util::peak_rss_bytes()) / (1024.0 * 1024.0));

  std::filesystem::remove(path);

  if (!json_path.empty()) {
    Json doc = report::document_header("bench");
    doc.set("bench", "stream_ingest");
    doc.set("records", tr.size());
    doc.set("file_bytes", file_bytes);
    doc.set("equivalent", true);
    doc.set("legs", std::move(legs));
    doc.set("reduction_min", reduction_min);
    doc.set("wall_ratio_max", wall_ratio_max);
    std::ofstream out(json_path);
    out << doc.dump(2) << "\n";
    if (!out.good()) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote bench JSON to %s\n", json_path.c_str());
  }
  return reduction_min >= 4.0 ? 0 : 1;
}
