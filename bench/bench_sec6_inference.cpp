// Section 6.2 reproduction: inferring implicit sender behavior.
//
//  * Sender window: a socket send-buffer smaller than cwnd x offered
//    window caps the flight; tcpanaly infers the cap from the trace's peak
//    in-flight and recognizes when it was binding.
//  * ICMP source quench: quenches never appear in a TCP-only trace; they
//    must be inferred from an otherwise-inexplicable slow-start restart.
//    The paper found 91 among 20,000 traces.
#include <cstdio>

#include "core/sender_analyzer.hpp"
#include "tcp/profiles.hpp"
#include "tcp/session.hpp"
#include "util/table.hpp"

using namespace tcpanaly;

int main() {
  std::printf("== Section 6.2: implicit-behavior inference ==\n\n");

  // ---- sender-window inference ----
  util::TextTable wtable({"send buffer", "offered window", "inferred window",
                          "window limited?"});
  for (std::uint32_t sndbuf : {4u * 1024, 8u * 1024, 32u * 1024}) {
    tcp::SessionConfig cfg = tcp::default_session();
    cfg.sender_profile = tcp::generic_reno();
    cfg.receiver_profile = cfg.sender_profile;
    cfg.sender.send_buffer = sndbuf;
    cfg.receiver.recv_buffer = 16 * 1024;
    auto r = tcp::run_session(cfg);
    auto rep = core::SenderAnalyzer(tcp::generic_reno()).analyze(r.sender_trace);
    wtable.add_row({util::strf("%u", sndbuf), "16384",
                    util::strf("%u", rep.inferred_sender_window),
                    rep.sender_window_limited ? "yes" : "no"});
  }
  std::printf("sender-window inference (paper: \"all TCPs have a sender window...\n"
              "often, though, this limit is not reached\"):\n%s\n",
              wtable.render().c_str());

  // ---- source-quench inference ----
  util::TextTable qtable({"scenario", "sessions", "quenches delivered",
                          "quenches inferred", "false inferences"});
  struct Cell {
    const char* name;
    const char* impl;
    bool with_quench;
  } cells[] = {
      {"BSD, no quench", "Generic Reno", false},
      {"BSD, one quench", "Generic Reno", true},
      {"Solaris, one quench", "Solaris 2.4", true},
  };
  for (const auto& cell : cells) {
    int sessions = 0, delivered = 0, inferred = 0, false_inf = 0;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      tcp::SessionConfig cfg = tcp::default_session();
      cfg.sender_profile = *tcp::find_profile(cell.impl);
      cfg.receiver_profile = cfg.sender_profile;
      cfg.seed = seed;
      if (cell.with_quench)
        cfg.quench_times.push_back(util::TimePoint(250'000 + 8'000 * seed));
      auto r = tcp::run_session(cfg);
      if (!r.completed) continue;
      ++sessions;
      delivered += static_cast<int>(r.sender_stats.source_quenches);
      auto rep =
          core::SenderAnalyzer(cfg.sender_profile).analyze(r.sender_trace);
      if (cell.with_quench)
        inferred += static_cast<int>(rep.inferred_quenches.size());
      else
        false_inf += static_cast<int>(rep.inferred_quenches.size());
    }
    qtable.add_row({cell.name, util::strf("%d", sessions), util::strf("%d", delivered),
                    util::strf("%d", inferred), util::strf("%d", false_inf)});
  }
  std::printf("source-quench inference (paper: 91 instances in 20,000 traces;\n"
              "BSD enters slow start, Solaris also halves ssthresh):\n%s\n",
              qtable.render().c_str());
  return 0;
}
