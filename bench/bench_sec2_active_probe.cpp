// Section 2 reproduction: the active-probing methodology of Comer & Lin
// and the fault injection of Dawson et al., combined with automated trace
// analysis as the paper's closing remark suggests.
//
// Every implementation in the registry is probed as a black box; the
// table reproduces the related work's published findings where they
// overlap our registry: Solaris' ~300 ms initial RTO (Comer & Lin found
// the same for 2.1; Dawson et al. for 2.3) vs everyone else's seconds,
// the backoff behavior, and the per-implementation recovery machinery.
#include <cstdio>

#include "probe/probe.hpp"
#include "tcp/profiles.hpp"
#include "util/table.hpp"

using namespace tcpanaly;

int main() {
  std::printf("== Section 2: active probing x automated analysis ==\n\n");
  util::TextTable table({"implementation", "init RTO", "backoff", "timeout retx",
                         "recovery", "init ssthresh", "abandon", "rcv acking"});
  for (const auto& impl : tcp::all_profiles()) {
    auto rep = probe::probe_implementation(impl);
    std::string recovery = "timeout only";
    if (rep.flight_retransmit_on_dup)
      recovery = "FLIGHT STORM on dups";
    else if (rep.fast_retransmit && rep.fast_recovery)
      recovery = util::strf("fast retx+recovery (%d dups)",
                            rep.dup_ack_threshold.value_or(0));
    else if (rep.fast_retransmit)
      recovery = util::strf("fast retx (%d dups)", rep.dup_ack_threshold.value_or(0));
    std::string acking = "-";
    if (rep.acks_every_packet)
      acking = "every pkt";
    else if (rep.delayed_ack_timer)
      acking = util::strf("~%.0f ms", rep.delayed_ack_timer->to_millis());
    std::string abandon = "-";
    if (rep.gives_up_after)
      abandon = util::strf("%d retx, %s", *rep.gives_up_after,
                           rep.sends_rst_on_give_up ? "RST" : "NO RST");
    table.add_row(
        {impl.name,
         rep.initial_rto ? util::strf("%.1f s", rep.initial_rto->to_seconds()) : "-",
         rep.backoff_factor ? util::strf("%.1fx", *rep.backoff_factor) : "-",
         rep.flight_retransmit_on_timeout ? "WHOLE FLIGHT" : "1 segment",
         recovery,
         rep.initial_ssthresh_segments
             ? util::strf("%u seg", *rep.initial_ssthresh_segments)
             : "unbounded",
         abandon, acking});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "related work reproduced: Comer & Lin / Dawson et al. measured\n"
      "Solaris' ~300 ms initial RTO (vs seconds elsewhere); the paper's own\n"
      "findings appear as the Linux 1.0 storms, the Solaris 8-segment and\n"
      "Linux 1-segment initial ssthresh, the Tahoe/Reno recovery split, and\n"
      "the three acking policies of section 9. Every probe reads only the\n"
      "resulting packet traces ('one can combine active techniques... with\n"
      "automated analysis of traces of the results', section 2).\n");
  return 0;
}
