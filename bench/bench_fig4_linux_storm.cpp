// Figure 4 reproduction: broken Linux 1.0 retransmission behavior.
//
// Linux 1.0 (a) retransmits every unacknowledged packet in a single burst,
// (b) does so far too early -- the first duplicate ack suffices -- and (c)
// lacks fast retransmission and initializes ssthresh to one segment. The
// paper's example connection: 317 packets sent, 117 of them
// retransmissions, 20% of packets dropped by the network.
#include <cstdio>

#include "tcp/profiles.hpp"
#include "tcp/session.hpp"
#include "util/table.hpp"

using namespace tcpanaly;

namespace {

struct StormStats {
  std::uint64_t packets = 0;
  std::uint64_t retx = 0;
  std::uint64_t bursts = 0;
  std::uint64_t net_drops = 0;
  std::uint64_t dup_delivered = 0;  ///< duplicate bytes the receiver absorbed
  double elapsed = 0.0;
  bool completed = false;
};

StormStats run_case(const tcp::TcpProfile& impl, std::uint64_t seed) {
  tcp::SessionConfig cfg = tcp::default_session();
  cfg.sender_profile = impl;
  cfg.receiver_profile = impl;
  // A congested long-haul path: moderate reordering + loss at a bottleneck,
  // the conditions of the figure.
  cfg.fwd_path.prop_delay = util::Duration::millis(80);
  cfg.rev_path.prop_delay = util::Duration::millis(80);
  cfg.fwd_path.bottleneck_rate_bytes_per_sec = 60'000.0;
  cfg.fwd_path.bottleneck_queue_limit = 10;
  cfg.fwd_path.reorder_prob = 0.02;
  cfg.fwd_path.reorder_extra = util::Duration::millis(30);
  cfg.fwd_path.loss_prob = 0.03;
  cfg.seed = seed;
  tcp::SessionResult r = tcp::run_session(cfg);
  StormStats out;
  out.packets = r.sender_stats.data_packets;
  out.retx = r.sender_stats.retransmissions;
  out.bursts = r.sender_stats.flight_retransmit_bursts;
  out.net_drops = r.fwd_network_drops;
  out.dup_delivered = r.receiver_stats.duplicate_data_bytes;
  out.elapsed = r.elapsed.to_seconds();
  out.completed = r.completed;
  return out;
}

}  // namespace

int main() {
  std::printf("== Figure 4: Linux 1.0 retransmission storms ==\n\n");

  util::TextTable table({"sender", "pkts sent", "retx", "retx%", "flight bursts",
                         "net drop%", "dup bytes@rcv", "elapsed(s)"});
  for (const char* name : {"Linux 1.0", "Linux 2.0", "Generic Reno"}) {
    StormStats total{};
    int n = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      StormStats s = run_case(*tcp::find_profile(name), seed);
      if (!s.completed) continue;
      total.packets += s.packets;
      total.retx += s.retx;
      total.bursts += s.bursts;
      total.net_drops += s.net_drops;
      total.dup_delivered += s.dup_delivered;
      total.elapsed += s.elapsed;
      ++n;
    }
    if (n == 0) continue;
    table.add_row({name, util::strf("%llu", (unsigned long long)(total.packets / n)),
                   util::strf("%llu", (unsigned long long)(total.retx / n)),
                   util::strf("%.0f%%", total.packets
                                  ? 100.0 * (double)total.retx / (double)total.packets
                                  : 0.0),
                   util::strf("%llu", (unsigned long long)(total.bursts / n)),
                   util::strf("%.0f%%",
                              100.0 * (double)total.net_drops /
                                  (double)(total.packets ? total.packets : 1)),
                   util::strf("%llu", (unsigned long long)(total.dup_delivered / n)),
                   util::strf("%.1f", total.elapsed / n)});
  }
  std::printf("%s\n", table.render().c_str());

  // One representative storm, plotted.
  tcp::SessionConfig cfg = tcp::default_session();
  cfg.sender_profile = *tcp::find_profile("Linux 1.0");
  cfg.receiver_profile = cfg.sender_profile;
  cfg.sender.transfer_bytes = 48 * 1024;
  cfg.fwd_path.prop_delay = util::Duration::millis(80);
  cfg.rev_path.prop_delay = util::Duration::millis(80);
  cfg.fwd_path.bottleneck_rate_bytes_per_sec = 60'000.0;
  cfg.fwd_path.bottleneck_queue_limit = 10;
  cfg.fwd_path.reorder_prob = 0.02;
  cfg.fwd_path.reorder_extra = util::Duration::millis(30);
  cfg.fwd_path.loss_prob = 0.03;
  cfg.seed = 2;
  tcp::SessionResult r = tcp::run_session(cfg);
  auto pts = trace::extract_seqplot(r.sender_trace);
  std::printf("%s\n", trace::render_seqplot(pts, 72, 18).c_str());

  std::printf(
      "paper: the example Linux 1.0 connection sent 317 packets, 117 of them\n"
      "retransmissions (37%%), with 20%% of packets dropped by the network --\n"
      "'the network equivalent of pouring gasoline on a fire' [Ja88]. Later\n"
      "Linux releases fix the behavior (section 10), as the Linux 2.0 row\n"
      "shows.\n");
  return 0;
}
