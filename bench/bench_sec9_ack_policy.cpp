// Section 9 reproduction: receiver acknowledgement policies.
//
//  * Ack classification per implementation: delayed (< 2 full segments),
//    normal (exactly 2), stretch (> 2), duplicate.
//  * Delayed-ack latency distributions: BSD's free-running 200 ms
//    heartbeat spreads delays over 0-200 ms; Solaris' per-arrival 50 ms
//    timer pins them at ~50 ms; Linux 1.0 acks every packet within ~1 ms.
//  * The Solaris 50 ms counter-productivity threshold: when the link can't
//    deliver two segments inside the timer (T*B < 2*S), EVERY in-sequence
//    packet is acked individually -- the paper derives ~21 KB/s for
//    536-byte segments; for the 200 ms BSD timer the bad regime ends at
//    ~5.4 KB/s.
#include <cstdio>

#include "core/receiver_analyzer.hpp"
#include "core/summary.hpp"
#include "tcp/profiles.hpp"
#include "tcp/session.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace tcpanaly;

namespace {

tcp::SessionResult run_for(const tcp::TcpProfile& impl, double rate, std::uint64_t seed,
                           std::uint32_t transfer = 100 * 1024) {
  tcp::SessionConfig cfg = tcp::default_session();
  cfg.sender_profile = impl;
  cfg.receiver_profile = impl;
  cfg.fwd_path.rate_bytes_per_sec = rate;
  cfg.rev_path.rate_bytes_per_sec = rate;
  cfg.sender.transfer_bytes = transfer;
  cfg.receiver.heartbeat_phase = util::Duration::millis((seed * 37) % 200);
  cfg.seed = seed;
  cfg.time_limit = util::Duration::seconds(600.0);
  return tcp::run_session(cfg);
}

}  // namespace

int main() {
  std::printf("== Section 9: acknowledgement policy ==\n\n");

  // ---- classification + delay distribution per implementation ----
  util::TextTable cls({"receiver", "delayed", "normal", "stretch", "dup",
                       "delay mean", "delay min", "delay max"});
  for (const char* name : {"BSDI", "Solaris 2.4", "Solaris 2.3", "Linux 1.0"}) {
    auto impl = *tcp::find_profile(name);
    core::ReceiverReport total;
    util::OnlineStats delays;
    std::size_t delayed = 0, normal = 0, stretch = 0, dup = 0;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      // A slow link (9 kB/s): delayed acks are routine, so the
      // timer machinery is visible. Below Solaris' effective threshold, so
      // its receiver acks (nearly) every packet at ~50 ms.
      auto r = run_for(impl, 9'000.0, seed, 24 * 1024);
      if (!r.completed) continue;
      core::ReceiverAnalysisOptions opts;
      opts.on_ack = [&](const core::AckObservation& o) {
        switch (o.cls) {
          case core::AckClass::kDelayed:
            ++delayed;
            if (!o.recovery_exempt) delays.add(o.delay.to_millis());
            break;
          case core::AckClass::kNormal: ++normal; break;
          case core::AckClass::kStretch: ++stretch; break;
          case core::AckClass::kDup: ++dup; break;
          default: break;
        }
      };
      (void)core::ReceiverAnalyzer(impl, opts).analyze(r.receiver_trace);
    }
    cls.add_row({name, util::strf("%zu", delayed), util::strf("%zu", normal),
                 util::strf("%zu", stretch), util::strf("%zu", dup),
                 util::strf("%.1f ms", delays.mean()), util::strf("%.1f ms", delays.min()),
                 util::strf("%.1f ms", delays.max())});
  }
  std::printf("%s\n", cls.render().c_str());

  // ---- the Solaris 2.3 acking bug (fixed in 2.4) ----
  util::TextTable bug({"receiver", "normal acks", "stretch acks"});
  for (const char* name : {"Solaris 2.3", "Solaris 2.4"}) {
    std::size_t normal = 0, stretch = 0;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      auto r = run_for(*tcp::find_profile(name), 1'000'000.0, seed);
      core::ReceiverAnalysisOptions opts;
      opts.on_ack = [&](const core::AckObservation& o) {
        if (o.cls == core::AckClass::kNormal) ++normal;
        if (o.cls == core::AckClass::kStretch) ++stretch;
      };
      (void)core::ReceiverAnalyzer(*tcp::find_profile(name), opts).analyze(r.receiver_trace);
    }
    bug.add_row({name, util::strf("%zu", normal), util::strf("%zu", stretch)});
  }
  std::printf("the 'relatively minor bug in 2.3's acking policy' fixed in 2.4\n"
              "(occasional stretch acks on a fast link):\n%s\n",
              bug.render().c_str());

  // ---- BSD heartbeat delay histogram (uniform over 0-200 ms) ----
  util::Histogram hist(0.0, 220.0, 11);
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    // Slow link so single segments routinely wait for the heartbeat.
    auto r = run_for(*tcp::find_profile("BSDI"), 4'000.0, seed, 12 * 1024);
    core::ReceiverAnalysisOptions opts;
    opts.on_ack = [&](const core::AckObservation& o) {
      if (o.cls == core::AckClass::kDelayed && !o.recovery_exempt)
        hist.add(o.delay.to_millis());
    };
    (void)core::ReceiverAnalyzer(*tcp::find_profile("BSDI"), opts).analyze(r.receiver_trace);
  }
  std::printf("BSD delayed-ack latency histogram, ms (paper: evenly distributed\n"
              "over 0-200 ms thanks to the free-running heartbeat):\n%s\n",
              hist.render(44).c_str());

  // ---- the delayed-ack timer threshold sweep ----
  util::TextTable sweep({"link rate", "Solaris acks/pkt", "BSD acks/pkt",
                         "Linux acks/pkt"});
  for (double rate : {2'000.0, 5'000.0, 10'000.0, 21'000.0, 40'000.0, 125'000.0}) {
    std::vector<std::string> row{util::strf("%.0f B/s", rate)};
    for (const char* name : {"Solaris 2.4", "BSDI", "Linux 1.0"}) {
      auto r = run_for(*tcp::find_profile(name), rate, 3, 16 * 1024);
      const double acks = static_cast<double>(r.receiver_stats.acks_sent);
      const double pkts = static_cast<double>(r.receiver_stats.data_packets);
      row.push_back(util::strf("%.2f", pkts > 0 ? acks / pkts : 0.0));
    }
    sweep.add_row(std::move(row));
  }
  std::printf("acks per data packet vs link rate (512-byte MSS). Below the\n"
              "T*B = 2*S boundary a timer-delayed receiver acks EVERY packet:\n"
              "Solaris (T=50 ms): boundary ~20.5 kB/s; BSD (T~200 ms): ~5.1 kB/s.\n%s\n",
              sweep.render().c_str());
  std::printf(
      "paper: Solaris' 50 ms timer is counter-productive at 56/64 kbit/s\n"
      "rates -- the sender waits longer for acks of two packets; Linux 1.0\n"
      "acks every packet at any rate (section 9.1).\n\n");

  // ---- 9.3: ack response delays as RTT-measurement noise ----
  // On a clean fixed-RTT path, every spread in the sender's Karn-valid RTT
  // samples above the true 40 ms RTT is noise contributed by the
  // receiver's acking machinery.
  util::TextTable noise({"receiver", "RTT samples", "min", "max", "spread"});
  for (const char* name : {"Linux 1.0", "Solaris 2.4", "BSDI"}) {
    util::DurationStats rtt;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      auto r = run_for(*tcp::find_profile(name), 1'000'000.0, seed, 48 * 1024);
      auto s = core::summarize(r.sender_trace);
      for (std::size_t i = 0; i < 1; ++i) {  // merge the per-trace stats
        // DurationStats has no merge; accumulate via raw samples is not
        // exposed -- approximate by re-adding min/mean/max weighting.
      }
      if (!s.rtt.empty()) {
        rtt.add(s.rtt.min());
        rtt.add(s.rtt.mean());
        rtt.add(s.rtt.max());
      }
    }
    if (rtt.empty()) continue;
    noise.add_row({name, util::strf("%zu traces", rtt.count() / 3),
                   util::strf("%.0f ms", rtt.min().to_millis()),
                   util::strf("%.0f ms", rtt.max().to_millis()),
                   util::strf("%.0f ms", (rtt.max() - rtt.min()).to_millis())});
  }
  std::printf(
      "ack response delays as RTT-measurement noise (section 9.3): on a\n"
      "clean 40 ms path, everything above 40 ms in the sender's Karn-valid\n"
      "RTT samples is the receiver's acking delay:\n%s\n"
      "Linux's immediate acks add ~nothing; the Solaris timer adds up to\n"
      "~50 ms; the BSD heartbeat adds up to ~200 ms -- 'a significant noise\n"
      "term for senders that attempt to measure round-trip times to high\n"
      "resolution.'\n",
      noise.render().c_str());
  return 0;
}
