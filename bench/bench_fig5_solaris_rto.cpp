// Figure 5 reproduction: broken Solaris 2.3/2.4 retransmission timer.
//
// Solaris starts its RTO near 300 ms and cannot adapt it upward: the
// moment an ack covers retransmitted data the timer reverts to its tiny
// base, and Karn's rule starves it of samples. On any path with RTT above
// the initial RTO, every packet is retransmitted needlessly -- the paper's
// 680 ms California-Netherlands path sends "almost as many retransmissions
// as new packets", and at RTT 2.6 s the first packets go out 4-6 times
// each. Effective load on a high-latency path roughly doubles.
#include <cstdio>
#include <map>

#include "tcp/profiles.hpp"
#include "tcp/session.hpp"
#include "util/table.hpp"

using namespace tcpanaly;

namespace {

struct RtoStats {
  std::uint64_t data_packets = 0;
  std::uint64_t retx = 0;
  std::uint64_t needless = 0;  ///< duplicate payload the receiver saw
  std::uint64_t net_drops = 0;
  int max_copies_first5 = 0;  ///< max times any of the first 5 segments was sent
  bool completed = false;
};

RtoStats run_case(const tcp::TcpProfile& impl, util::Duration owd) {
  tcp::SessionConfig cfg = tcp::default_session();
  cfg.sender_profile = impl;
  cfg.receiver_profile = impl;
  cfg.fwd_path.prop_delay = owd;
  cfg.rev_path.prop_delay = owd;
  cfg.sender.transfer_bytes = 100 * 1024;
  tcp::SessionResult r = tcp::run_session(cfg);

  RtoStats out;
  out.completed = r.completed;
  out.data_packets = r.sender_stats.data_packets;
  out.retx = r.sender_stats.retransmissions;
  out.needless = r.receiver_stats.duplicate_data_bytes / 512;
  out.net_drops = r.fwd_network_drops;
  std::map<trace::SeqNum, int> copies;
  for (const auto& rec : r.sender_trace.records()) {
    if (!r.sender_trace.is_from_local(rec) || rec.tcp.payload_len == 0) continue;
    if (rec.tcp.seq < cfg.sender.initial_seq + 1 + 5 * 512) ++copies[rec.tcp.seq];
  }
  for (const auto& [seq, n] : copies) out.max_copies_first5 = std::max(out.max_copies_first5, n);
  return out;
}

}  // namespace

int main() {
  std::printf("== Figure 5: Solaris premature retransmission timer ==\n\n");

  util::TextTable table({"sender", "RTT", "pkts", "retx", "retx/new", "needless(segs)",
                         "net drops", "max copies of an early seg"});
  struct Case {
    const char* impl;
    int rtt_ms;
  } cases[] = {
      {"Solaris 2.4", 40},   {"Solaris 2.4", 680}, {"Solaris 2.4", 2600},
      {"Generic Reno", 680}, {"Generic Reno", 2600},
  };
  for (const auto& c : cases) {
    RtoStats s = run_case(*tcp::find_profile(c.impl), util::Duration::millis(c.rtt_ms / 2));
    const double new_pkts = static_cast<double>(s.data_packets - s.retx);
    table.add_row({c.impl, util::strf("%d ms", c.rtt_ms),
                   util::strf("%llu", (unsigned long long)s.data_packets),
                   util::strf("%llu", (unsigned long long)s.retx),
                   util::strf("%.2f", new_pkts > 0 ? (double)s.retx / new_pkts : 0.0),
                   util::strf("%llu", (unsigned long long)s.needless),
                   util::strf("%llu", (unsigned long long)s.net_drops),
                   util::strf("%d", s.max_copies_first5)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "paper: at RTT 680 ms 'almost as many retransmissions as new packets',\n"
      "every one needless (net drops = 0); at RTT 2.6 s the first data\n"
      "packets are retransmitted 4-6 times; load on a high-latency path is\n"
      "effectively doubled. A BSD timer (1 s floor, proper backoff and\n"
      "adaptation) retransmits nothing on the same clean path.\n");
  return 0;
}
