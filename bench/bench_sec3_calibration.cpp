// Section 3 calibration cost: the registry refactor routed calibrate()
// through the incremental CalibrationEvaluator (one pass, plus a second
// pass on the duplicate-stripped view when additions were found) instead
// of the four independent materialized detect_* scans it used to run.
// This bench pins the price of that unification: over a workload mixing
// simulated sessions (clean / lossy / window-limited, thousands of
// records) with the tampering-scenario grid, the registry path must stay
// within 1.2x of the pre-refactor pass sequence -- re-run here verbatim
// as the "legacy" leg: time travel, duplication (+strip on hit),
// resequencing, filter drops, each as its own walk over the trace.
//
// The legacy leg has no tampering detectors (they did not exist before
// the registry), so the comparison charges the registry leg for the
// three TAMPER-* state machines AND the verdict-vector finalization it
// now performs -- the honest worst case for the refactor.
//
// With --json FILE the measurements are written as a machine-readable
// document (bench/results/sec3_calibration.json keeps the reference copy).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/calibration.hpp"
#include "netsim/tampering_scenarios.hpp"
#include "report/report.hpp"
#include "tcp/session.hpp"
#include "util/table.hpp"

using namespace tcpanaly;
using report::Json;
using trace::Trace;

namespace {

double wall_ms(const std::chrono::steady_clock::time_point t0,
               const std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// The pre-refactor calibrate(): four materialized scans, with the
/// resequencing/drop passes re-run on the duplicate-stripped view when the
/// duplication detector fired (the same two-pass shape calibrate() keeps).
core::CalibrationReport legacy_calibrate(const Trace& tr) {
  core::CalibrationReport rep;
  rep.time_travel = core::detect_time_travel(tr);
  rep.duplication = core::detect_measurement_duplicates(tr);
  if (!rep.duplication.duplicate_indices.empty()) {
    const Trace stripped = core::strip_duplicates(tr, rep.duplication);
    rep.resequencing = core::detect_resequencing(stripped);
    rep.drops = core::detect_filter_drops(stripped);
  } else {
    rep.resequencing = core::detect_resequencing(tr);
    rep.drops = core::detect_filter_drops(tr);
  }
  return rep;
}

std::vector<Trace> workload() {
  std::vector<Trace> out;
  // Sessions big enough that per-record detector cost dominates: clean,
  // lossy (retransmissions exercise the drop/reseq machinery), and
  // window-limited (dense liberating-ack pattern).
  tcp::SessionConfig clean = tcp::default_session();
  clean.sender.transfer_bytes = 512 * 1024;
  tcp::SessionConfig lossy = tcp::default_session();
  lossy.sender.transfer_bytes = 512 * 1024;
  lossy.fwd_path.loss_prob = 0.02;
  lossy.seed = 7;
  tcp::SessionConfig limited = tcp::default_session();
  limited.sender.transfer_bytes = 256 * 1024;
  limited.receiver.recv_buffer = 8 * 1024;
  for (const auto& cfg : {clean, lossy, limited}) {
    auto r = tcp::run_session(cfg);
    out.push_back(std::move(r.sender_trace));
    out.push_back(std::move(r.receiver_trace));
  }
  // The tampering grid: small traces, but they drive every registry
  // detector through its firing and clean paths.
  for (const auto& s : sim::tampering_scenarios())
    out.push_back(sim::make_tampering_trace(s));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  int reps = 30;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--reps N] [--json FILE]\n", argv[0]);
      return 2;
    }
  }

  std::printf("== Section 3: calibration registry cost ==\n\n");

  const std::vector<Trace> traces = workload();
  std::uint64_t records = 0;
  for (const auto& tr : traces) records += tr.size();
  std::printf("workload: %zu traces, %llu records, %d reps/leg\n\n",
              traces.size(), static_cast<unsigned long long>(records), reps);

  // Warm both paths once (page in code, fault the allocator) and sanity
  // check that the registry path agrees with the legacy scans where they
  // overlap -- a speedup from computing something different is no speedup.
  std::uint64_t legacy_findings = 0, registry_findings = 0;
  for (const auto& tr : traces) {
    const auto legacy = legacy_calibrate(tr);
    const auto reg = core::calibrate(tr);
    legacy_findings += legacy.time_travel.instances.size() +
                       legacy.duplication.duplicate_indices.size() +
                       legacy.resequencing.instances.size() +
                       legacy.drops.findings.size();
    registry_findings += reg.time_travel.instances.size() +
                         reg.duplication.duplicate_indices.size() +
                         reg.resequencing.instances.size() +
                         reg.drops.findings.size();
  }
  const bool agree = legacy_findings == registry_findings;

  const auto l0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r)
    for (const auto& tr : traces) {
      const auto rep = legacy_calibrate(tr);
      if (rep.time_travel.instances.size() > records) std::abort();  // keep it live
    }
  const auto l1 = std::chrono::steady_clock::now();
  const double legacy_ms = wall_ms(l0, l1) / reps;

  const auto g0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r)
    for (const auto& tr : traces) {
      const auto rep = core::calibrate(tr);
      if (rep.detectors.size() != core::calibration_registry().size())
        std::abort();
    }
  const auto g1 = std::chrono::steady_clock::now();
  const double registry_ms = wall_ms(g0, g1) / reps;

  const double ratio = registry_ms / legacy_ms;

  util::TextTable table({"leg", "wall ms/rep", "detectors", "notes"});
  table.add_row({"legacy 4-pass", util::strf("%.3f", legacy_ms), "4",
                 "pre-refactor detect_* sequence"});
  table.add_row({"registry calibrate()", util::strf("%.3f", registry_ms),
                 util::strf("%zu", core::calibration_registry().size()),
                 "evaluator + tampering + verdict vector"});
  std::printf("%s\n", table.render().c_str());
  std::printf("wall ratio (registry / legacy): %.3f  [budget 1.2]\n", ratio);
  std::printf("overlapping findings agree: %s (%llu)\n", agree ? "yes" : "NO",
              static_cast<unsigned long long>(registry_findings));

  if (!json_path.empty()) {
    Json doc = report::document_header("bench");
    doc.set("bench", "sec3_calibration");
    doc.set("traces", static_cast<std::uint64_t>(traces.size()));
    doc.set("records", records);
    doc.set("reps", static_cast<std::uint64_t>(reps));
    doc.set("registry_detectors",
            static_cast<std::uint64_t>(core::calibration_registry().size()));
    doc.set("legacy_wall_ms", legacy_ms);
    doc.set("registry_wall_ms", registry_ms);
    doc.set("wall_ratio", ratio);
    doc.set("budget_ratio", 1.2);
    doc.set("within_budget", ratio <= 1.2);
    doc.set("overlapping_findings_agree", agree);
    doc.set("overlapping_findings", registry_findings);
    std::ofstream out(json_path);
    out << doc.dump(2) << "\n";
    if (!out.good()) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote bench JSON to %s\n", json_path.c_str());
  }
  return agree && ratio <= 1.2 ? 0 : 1;
}
