// Figure 3 reproduction: the Net/3 uninitialized-cwnd bug.
//
// If the SYN-ack carries no MSS option, Net/3-derived stacks leave cwnd
// and ssthresh at a huge value and slam out the entire offered window in
// one burst (~30 packets into a 16 KB window). In the paper's example, 14
// of the 61 packets of the first two bursts were lost.
#include <cstdio>

#include "tcp/profiles.hpp"
#include "tcp/session.hpp"
#include "trace/trace.hpp"
#include "util/table.hpp"

using namespace tcpanaly;

namespace {

struct BurstStats {
  std::size_t first_flight = 0;   ///< data packets out before any data ack
  std::size_t burst_losses = 0;   ///< network drops among the first 2 bursts
  std::size_t total_sent = 0;
  bool completed = false;
};

BurstStats run_case(const tcp::TcpProfile& impl, bool omit_mss) {
  tcp::SessionConfig cfg = tcp::default_session();
  cfg.sender_profile = impl;
  cfg.receiver_profile = impl;
  cfg.receiver.omit_mss_option = omit_mss;
  cfg.receiver.recv_buffer = 16 * 1024;  // the figure's 16,384-byte window
  cfg.sender.send_buffer = 64 * 1024;
  // A congested bottleneck inside the cloud: the burst overruns its queue.
  cfg.fwd_path.bottleneck_rate_bytes_per_sec = 180'000.0;
  cfg.fwd_path.bottleneck_queue_limit = 12;
  tcp::SessionResult r = tcp::run_session(cfg);

  BurstStats out;
  out.completed = r.completed;
  out.total_sent = r.sender_stats.data_packets;
  out.burst_losses = r.fwd_network_drops;
  for (const auto& rec : r.sender_trace.records()) {
    if (!r.sender_trace.is_from_local(rec) && rec.tcp.flags.ack &&
        trace::seq_gt(rec.tcp.ack, cfg.sender.initial_seq + 1))
      break;
    if (r.sender_trace.is_from_local(rec) && rec.tcp.payload_len > 0) ++out.first_flight;
  }
  return out;
}

}  // namespace

int main() {
  std::printf("== Figure 3: Net/3 uninitialized-cwnd bug ==\n\n");

  util::TextTable table({"sender", "SYN-ack MSS option", "first-flight pkts",
                         "network drops", "completed"});
  struct Case {
    const char* impl;
    bool omit;
  } cases[] = {
      {"BSDI", true},    // Net/3 lineage, bug detonates
      {"BSDI", false},   // same stack, normal peer: slow start
      {"HP/UX", true},   // Reno without the bug: slow start regardless
  };
  for (const auto& c : cases) {
    BurstStats s = run_case(*tcp::find_profile(c.impl), c.omit);
    table.add_row({c.impl, c.omit ? "ABSENT" : "present",
                   util::strf("%zu", s.first_flight), util::strf("%zu", s.burst_losses),
                   s.completed ? "yes" : "NO"});
  }
  std::printf("%s\n", table.render().c_str());

  // Sequence plot of the pathological case's opening.
  tcp::SessionConfig cfg = tcp::default_session();
  cfg.sender_profile = *tcp::find_profile("BSDI");
  cfg.receiver_profile = cfg.sender_profile;
  cfg.receiver.omit_mss_option = true;
  cfg.receiver.recv_buffer = 16 * 1024;
  cfg.sender.send_buffer = 64 * 1024;
  cfg.sender.transfer_bytes = 48 * 1024;
  cfg.fwd_path.bottleneck_rate_bytes_per_sec = 180'000.0;
  cfg.fwd_path.bottleneck_queue_limit = 12;
  tcp::SessionResult r = tcp::run_session(cfg);
  auto pts = trace::extract_seqplot(r.sender_trace);
  std::printf("%s\n", trace::render_seqplot(pts, 72, 18).c_str());

  std::printf(
      "paper: ~30 full-sized packets flood out the instant the first window\n"
      "opens (cwnd never initialized); 14 of 61 packets in the first two\n"
      "spikes were lost. The bug needs the unusual combination of a peer\n"
      "omitting the MSS option AND offering a large window (section 8.4).\n");
  return 0;
}
