// Section 11 reproduction: "it behooves the Internet community to develop
// testing programs and reference implementations."
//
// This is that testing program, run against every implementation in the
// registry: each row aggregates conformance verdicts over scenarios that
// exercise the requirements (clean, lossy, long-RTT, dead-path, no-MSS
// peer). The failure pattern reproduces the paper's findings requirement
// by requirement.
#include <cstdio>
#include <map>
#include <vector>

#include "core/conformance.hpp"
#include "tcp/profiles.hpp"
#include "tcp/session.hpp"
#include "util/table.hpp"

using namespace tcpanaly;

namespace {

std::vector<tcp::SessionConfig> scenarios(const tcp::TcpProfile& impl) {
  std::vector<tcp::SessionConfig> out;
  tcp::SessionConfig clean = tcp::default_session();
  out.push_back(clean);
  tcp::SessionConfig lossy = tcp::default_session();
  lossy.fwd_path.loss_prob = 0.03;
  lossy.seed = 7;
  out.push_back(lossy);
  tcp::SessionConfig long_rtt = tcp::default_session();
  long_rtt.fwd_path.prop_delay = util::Duration::millis(340);
  long_rtt.rev_path.prop_delay = util::Duration::millis(340);
  out.push_back(long_rtt);
  tcp::SessionConfig no_mss = tcp::default_session();
  no_mss.receiver.omit_mss_option = true;
  out.push_back(no_mss);
  tcp::SessionConfig dead = tcp::default_session();
  for (std::uint64_t n = 40; n < 400; ++n) dead.fwd_path.drop_nth.push_back(n);
  dead.sender.max_data_retries = 5;  // short enough to reach abandonment
  dead.time_limit = util::Duration::seconds(240.0);
  out.push_back(dead);
  for (auto& cfg : out) {
    cfg.sender_profile = impl;
    cfg.receiver_profile = impl;
  }
  return out;
}

}  // namespace

int main() {
  std::printf("== Section 11: conformance testing program ==\n\n");

  // Establish column order from one run.
  std::vector<std::string> requirements;
  {
    auto r = tcp::run_session(scenarios(tcp::generic_reno())[0]);
    for (const auto& c : core::check_conformance(r.sender_trace).checks)
      requirements.push_back(c.requirement);
    for (const auto& c : core::check_conformance(r.receiver_trace).checks)
      requirements.push_back(c.requirement);
  }

  std::vector<std::string> headers{"implementation"};
  for (std::size_t i = 0; i < requirements.size(); ++i)
    headers.push_back(util::strf("R%zu", i + 1));
  util::TextTable table(std::move(headers));

  for (const auto& impl : tcp::all_profiles()) {
    std::map<std::string, char> cell;  // requirement -> worst verdict
    for (const auto& cfg : scenarios(impl)) {
      auto r = tcp::run_session(cfg);
      auto apply = [&](const core::ConformanceReport& rep) {
        for (const auto& c : rep.checks) {
          char& v = cell.try_emplace(c.requirement, '-').first->second;
          if (c.verdict == core::Verdict::kFail)
            v = 'F';
          else if (c.verdict == core::Verdict::kPass && v != 'F')
            v = 'P';
        }
      };
      apply(core::check_conformance(r.sender_trace));
      apply(core::check_conformance(r.receiver_trace));
    }
    std::vector<std::string> row{impl.name};
    for (const auto& req : requirements)
      row.push_back(std::string(1, cell.count(req) ? cell[req] : '-'));
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
  for (std::size_t i = 0; i < requirements.size(); ++i)
    std::printf("R%zu: %s\n", i + 1, requirements[i].c_str());
  std::printf(
      "\nP = passed wherever exercised; F = failed in at least one scenario;\n"
      "- = never exercised. Scenarios: clean / 3%% loss / 680 ms RTT / peer\n"
      "without MSS option / dead path. The failure pattern is the paper's:\n"
      "independently written TCPs (Linux 1.0, Solaris, Trumpet) carry the\n"
      "serious violations; BSD-derived stacks fail only via the Net/3\n"
      "uninitialized-cwnd bug under its unusual trigger (section 8.4, 11).\n");
  return 0;
}
