// Section 11 reproduction: "it behooves the Internet community to develop
// testing programs and reference implementations."
//
// This is that testing program, run against every implementation in the
// registry: each row aggregates conformance verdicts over scenarios that
// exercise the requirements (clean, lossy, long-RTT, dead-path, no-MSS
// peer). The failure pattern reproduces the paper's findings requirement
// by requirement. Columns come from core::requirement_registry(), so the
// matrix stays aligned with the stable requirement IDs the batch/daemon
// paths report. With --json FILE the matrix is also written as a
// machine-readable document (bench/results/sec11_conformance.json keeps
// the reference copy).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/conformance.hpp"
#include "report/report.hpp"
#include "tcp/profiles.hpp"
#include "tcp/session.hpp"
#include "util/table.hpp"

using namespace tcpanaly;
using report::Json;

namespace {

std::vector<tcp::SessionConfig> scenarios(const tcp::TcpProfile& impl) {
  std::vector<tcp::SessionConfig> out;
  tcp::SessionConfig clean = tcp::default_session();
  out.push_back(clean);
  tcp::SessionConfig lossy = tcp::default_session();
  lossy.fwd_path.loss_prob = 0.03;
  lossy.seed = 7;
  out.push_back(lossy);
  tcp::SessionConfig long_rtt = tcp::default_session();
  long_rtt.fwd_path.prop_delay = util::Duration::millis(340);
  long_rtt.rev_path.prop_delay = util::Duration::millis(340);
  out.push_back(long_rtt);
  tcp::SessionConfig no_mss = tcp::default_session();
  no_mss.receiver.omit_mss_option = true;
  out.push_back(no_mss);
  tcp::SessionConfig dead = tcp::default_session();
  for (std::uint64_t n = 40; n < 400; ++n) dead.fwd_path.drop_nth.push_back(n);
  dead.sender.max_data_retries = 5;  // short enough to reach abandonment
  dead.time_limit = util::Duration::seconds(240.0);
  out.push_back(dead);
  for (auto& cfg : out) {
    cfg.sender_profile = impl;
    cfg.receiver_profile = impl;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json FILE]\n", argv[0]);
      return 2;
    }
  }

  std::printf("== Section 11: conformance testing program ==\n\n");

  const auto& registry = core::requirement_registry();

  std::vector<std::string> headers{"implementation"};
  for (std::size_t i = 0; i < registry.size(); ++i)
    headers.push_back(util::strf("R%zu", i + 1));
  util::TextTable table(std::move(headers));

  // implementation -> requirement id -> worst verdict across scenarios.
  std::vector<std::pair<std::string, std::map<std::string, char>>> matrix;
  for (const auto& impl : tcp::all_profiles()) {
    std::map<std::string, char> cell;
    for (const auto& cfg : scenarios(impl)) {
      auto r = tcp::run_session(cfg);
      auto apply = [&](const core::ConformanceReport& rep) {
        for (const auto& c : rep.results) {
          char& v = cell.try_emplace(c.requirement->id, '-').first->second;
          if (c.verdict == core::Verdict::kFail)
            v = 'F';
          else if (c.verdict == core::Verdict::kPass && v != 'F')
            v = 'P';
        }
      };
      apply(core::check_conformance(r.sender_trace));
      apply(core::check_conformance(r.receiver_trace));
    }
    std::vector<std::string> row{impl.name};
    for (const auto& req : registry)
      row.push_back(std::string(1, cell.count(req.id) ? cell[req.id] : '-'));
    table.add_row(std::move(row));
    matrix.emplace_back(impl.name, std::move(cell));
  }
  std::printf("%s\n", table.render().c_str());
  for (std::size_t i = 0; i < registry.size(); ++i)
    std::printf("R%zu: [%s] %s (%s)\n", i + 1,
                core::to_string(registry[i].level), registry[i].id,
                registry[i].reference);
  std::printf(
      "\nP = passed wherever exercised; F = failed in at least one scenario;\n"
      "- = never exercised. Scenarios: clean / 3%% loss / 680 ms RTT / peer\n"
      "without MSS option / dead path. The failure pattern is the paper's:\n"
      "independently written TCPs (Linux 1.0, Solaris, Trumpet) carry the\n"
      "serious violations; BSD-derived stacks fail only via the Net/3\n"
      "uninitialized-cwnd bug under its unusual trigger (section 8.4, 11).\n");

  if (!json_path.empty()) {
    Json doc = report::document_header("bench");
    doc.set("bench", "sec11_conformance");
    Json reqs = Json::array();
    for (const auto& r : registry) {
      Json row = Json::object();
      row.set("id", r.id);
      row.set("level", core::to_string(r.level));
      row.set("reference", r.reference);
      reqs.push_back(std::move(row));
    }
    doc.set("requirements", std::move(reqs));
    Json impls = Json::array();
    for (const auto& [name, cell] : matrix) {
      Json row = Json::object();
      row.set("implementation", name);
      Json verdicts = Json::object();
      for (const auto& r : registry) {
        const auto it = cell.find(r.id);
        const char v = it == cell.end() ? '-' : it->second;
        verdicts.set(r.id, v == 'F'   ? "FAIL"
                           : v == 'P' ? "PASS"
                                      : "not exercised");
      }
      row.set("verdicts", std::move(verdicts));
      impls.push_back(std::move(row));
    }
    doc.set("implementations", std::move(impls));
    std::ofstream out(json_path);
    out << doc.dump(2) << "\n";
    if (!out.good()) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote bench JSON to %s\n", json_path.c_str());
  }
  return 0;
}
