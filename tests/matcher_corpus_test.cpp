// Matcher + corpus integration: identification across path conditions,
// fit-class semantics, pcap round-trip analysis, vantage-race robustness.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <stdexcept>

#include "core/analyze.hpp"
#include "corpus/corpus.hpp"
#include "tcp/profiles.hpp"
#include "trace/pcap_io.hpp"

namespace tcpanaly {
namespace {

using core::FitClass;

TEST(Profiles, RegistryLookup) {
  EXPECT_TRUE(tcp::find_profile("Solaris 2.4").has_value());
  EXPECT_TRUE(tcp::find_profile("Generic Tahoe").has_value());
  EXPECT_FALSE(tcp::find_profile("Windows 3.1").has_value());
  EXPECT_EQ(tcp::main_study_profiles().size(), 9u);
  EXPECT_EQ(tcp::all_profiles().size(), 14u);
}

TEST(Profiles, LineagesMatchTable1) {
  EXPECT_EQ(tcp::find_profile("SunOS 4.1")->lineage, tcp::Lineage::kTahoe);
  EXPECT_EQ(tcp::find_profile("BSDI")->lineage, tcp::Lineage::kReno);
  EXPECT_EQ(tcp::find_profile("Linux 1.0")->lineage, tcp::Lineage::kIndependent);
  EXPECT_EQ(tcp::find_profile("Solaris 2.3")->lineage, tcp::Lineage::kIndependent);
}

TEST(Corpus, SessionConfigWiresProfileAndPath) {
  corpus::ScenarioParams p;
  p.loss_prob = 0.05;
  p.one_way_delay = util::Duration::millis(99);
  p.rate_bytes_per_sec = 250'000.0;
  p.seed = 7;
  auto cfg = corpus::make_session(*tcp::find_profile("IRIX"), p);
  EXPECT_EQ(cfg.sender_profile.name, "IRIX");
  EXPECT_EQ(cfg.fwd_path.loss_prob, 0.05);
  EXPECT_EQ(cfg.fwd_path.prop_delay, util::Duration::millis(99));
  EXPECT_EQ(cfg.seed, 7u);
}

TEST(Corpus, GeneratesFullGrid) {
  corpus::CorpusOptions opts;
  opts.loss_probs = {0.0, 0.02};
  opts.one_way_delays = {util::Duration::millis(20)};
  opts.rates = {1'000'000.0};
  opts.seeds_per_cell = 2;
  auto entries = corpus::generate_corpus(tcp::generic_reno(), opts);
  ASSERT_EQ(entries.size(), 4u);
  for (const auto& e : entries) {
    EXPECT_TRUE(e.result.completed) << e.params.label();
    EXPECT_EQ(e.impl_name, "Generic Reno");
  }
  // Distinct seeds produce distinct traces.
  EXPECT_NE(entries[0].result.sender_trace.size() +
                entries[0].result.sender_trace[4].timestamp.count(),
            entries[1].result.sender_trace.size() +
                entries[1].result.sender_trace[4].timestamp.count());
}

TEST(Matcher, RendersAllCandidates) {
  corpus::ScenarioParams p;
  p.seed = 3;
  auto r = tcp::run_session(corpus::make_session(tcp::generic_reno(), p));
  auto match = core::match_implementations(r.sender_trace, tcp::all_profiles());
  EXPECT_EQ(match.fits.size(), tcp::all_profiles().size());
  const std::string out = match.render();
  for (const auto& prof : tcp::all_profiles())
    EXPECT_NE(out.find(prof.name), std::string::npos) << prof.name;
  // Sorted: no fit may be better-classed than its predecessor.
  for (std::size_t i = 1; i < match.fits.size(); ++i)
    EXPECT_LE(static_cast<int>(match.fits[i - 1].fit),
              static_cast<int>(match.fits[i].fit));
}

TEST(Matcher, ReceiverSideUsesAckPolicies) {
  corpus::ScenarioParams p;
  p.seed = 5;
  p.rate_bytes_per_sec = 9'000.0;  // slow link: delayed acks aplenty
  p.transfer_bytes = 24 * 1024;
  auto r = tcp::run_session(corpus::make_session(*tcp::find_profile("Solaris 2.4"), p));
  auto match = core::match_implementations(r.receiver_trace, tcp::all_profiles());
  EXPECT_EQ(match.role, trace::LocalRole::kReceiver);
  EXPECT_TRUE(match.identifies("Solaris 2.4")) << match.render();
  // The BSD heartbeat family must NOT be a close fit for a 50 ms cluster.
  for (const auto& fit : match.fits) {
    if (fit.profile.name == "BSDI") {
      EXPECT_NE(fit.fit, FitClass::kClose) << match.render();
    }
  }
}

TEST(Matcher, VantageRaceDoesNotBreakTrueProfile) {
  // Sluggish host + loss: retransmission decisions race recorded acks.
  // The true profile must stay violation-free; the single-state ablation
  // must not (this is Figure 2's quantitative content).
  std::size_t naive_violations = 0;
  for (std::uint64_t seed : {6, 10, 35}) {
    tcp::SessionConfig cfg = tcp::default_session();
    cfg.sender_profile = tcp::generic_reno();
    cfg.receiver_profile = cfg.sender_profile;
    cfg.sender_proc_delay = util::Duration::millis(4);
    cfg.fwd_path.loss_prob = 0.04;
    cfg.seed = seed;
    auto r = tcp::run_session(cfg);
    ASSERT_TRUE(r.completed);
    auto rep = core::SenderAnalyzer(tcp::generic_reno()).analyze(r.sender_trace);
    EXPECT_TRUE(rep.violations.empty()) << "seed " << seed;

    core::SenderAnalysisOptions naive;
    naive.single_liberation = true;
    naive.vantage_grace = util::Duration::zero();
    naive_violations +=
        core::SenderAnalyzer(tcp::generic_reno(), naive).analyze(r.sender_trace)
            .violations.size();
  }
  EXPECT_GT(naive_violations, 0u);
}

TEST(Analyze, PcapRoundTripPreservesIdentification) {
  corpus::ScenarioParams p;
  p.loss_prob = 0.02;
  p.seed = 9;
  auto r = tcp::run_session(corpus::make_session(*tcp::find_profile("SunOS 4.1"), p));
  std::stringstream buf;
  trace::write_pcap(buf, r.sender_trace);
  auto loaded = trace::read_pcap(buf, /*local_is_sender=*/true);
  auto analysis = core::analyze_trace(loaded.trace);
  EXPECT_TRUE(analysis.calibration.trustworthy());
  EXPECT_TRUE(analysis.match.identifies("SunOS 4.1")) << analysis.match.render();
}

TEST(Analyze, DuplicatedTraceCleanedBeforeMatching) {
  tcp::SessionConfig cfg = tcp::default_session();
  cfg.sender_profile = *tcp::find_profile("IRIX");
  cfg.receiver_profile = cfg.sender_profile;
  cfg.sender_filter.irix_double_copy = true;
  cfg.fwd_path.loss_prob = 0.01;
  cfg.seed = 12;
  auto r = tcp::run_session(cfg);
  auto analysis = core::analyze_trace(r.sender_trace);
  EXPECT_FALSE(analysis.calibration.duplication.duplicate_indices.empty());
  EXPECT_LT(analysis.cleaned.size(), r.sender_trace.size());
  EXPECT_TRUE(analysis.match.identifies("IRIX")) << analysis.match.render();
}

TEST(Analyze, TraceWithFilterDropsStillMostlyAnalyzable) {
  tcp::SessionConfig cfg = tcp::default_session();
  cfg.sender_profile = tcp::generic_reno();
  cfg.receiver_profile = cfg.sender_profile;
  cfg.sender_filter.drop_prob = 0.03;
  cfg.seed = 8;
  auto r = tcp::run_session(cfg);
  auto analysis = core::analyze_trace(r.sender_trace);
  EXPECT_FALSE(analysis.calibration.trustworthy());
  EXPECT_TRUE(analysis.calibration.drops.drops_detected());
}

}  // namespace
}  // namespace tcpanaly

namespace tcpanaly {
namespace {

TEST(ModelAwareDrops, AckDropsSurfaceAsCwndViolations) {
  // Drop a couple of inbound ack records at the filter: the sender's
  // subsequent (legitimate) sends exceed the window computable from the
  // recorded acks, and the implementation-aware check blames the filter.
  tcp::SessionConfig cfg = tcp::default_session();
  cfg.sender_profile = tcp::generic_reno();
  cfg.receiver_profile = cfg.sender_profile;
  cfg.sender_filter.drop_prob = 0.06;
  cfg.seed = 21;
  auto r = tcp::run_session(cfg);
  ASSERT_TRUE(r.completed);
  ASSERT_GT(r.sender_filter_drops, 0u);
  auto generic = core::detect_filter_drops(r.sender_trace);
  auto model = core::infer_drops_from_model(r.sender_trace, tcp::generic_reno());
  // Together the checks must notice the damaged measurement.
  EXPECT_TRUE(generic.drops_detected() || model.drops_detected());
}

TEST(ModelAwareDrops, WrongModelStaysSilent) {
  // A wrong candidate's violations say nothing about the filter: the
  // check must refuse to blame the measurement.
  tcp::SessionConfig cfg = tcp::default_session();
  cfg.sender_profile = tcp::generic_reno();
  cfg.receiver_profile = cfg.sender_profile;
  cfg.seed = 22;
  auto r = tcp::run_session(cfg);
  auto model = core::infer_drops_from_model(r.sender_trace, *tcp::find_profile("Linux 1.0"));
  EXPECT_FALSE(model.drops_detected());
}

TEST(ModelAwareDrops, CleanTraceYieldsNothing) {
  tcp::SessionConfig cfg = tcp::default_session();
  cfg.sender_profile = tcp::generic_reno();
  cfg.receiver_profile = cfg.sender_profile;
  cfg.seed = 23;
  auto r = tcp::run_session(cfg);
  auto model = core::infer_drops_from_model(r.sender_trace, tcp::generic_reno());
  EXPECT_FALSE(model.drops_detected());
}

}  // namespace
}  // namespace tcpanaly

namespace tcpanaly {
namespace {

TEST(Profiles, RegistryInvariants) {
  const auto all = tcp::all_profiles();
  // Unique, non-empty names and versions; lookup round-trips.
  std::set<std::string> names;
  for (const auto& p : all) {
    EXPECT_FALSE(p.name.empty());
    EXPECT_FALSE(p.versions.empty());
    EXPECT_TRUE(names.insert(p.name).second) << "duplicate: " << p.name;
    auto found = tcp::find_profile(p.name);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, p);
  }
  // Main-study and follow-up sets are disjoint subsets of the registry.
  for (const auto& p : tcp::main_study_profiles())
    EXPECT_TRUE(names.count(p.name)) << p.name;
  for (const auto& p : tcp::followup_profiles())
    EXPECT_TRUE(names.count(p.name)) << p.name;
}

TEST(Profiles, ExperimentalRouteCacheParameterized) {
  EXPECT_EQ(tcp::experimental_route_cache(4).initial_ssthresh_segments, 4u);
  EXPECT_EQ(tcp::experimental_route_cache().initial_ssthresh_segments, 6u);
}

// -- matcher edge cases the batch path hits at scale --

TEST(Matcher, EmptyCandidateListRejected) {
  corpus::ScenarioParams p;
  p.seed = 4;
  auto r = tcp::run_session(corpus::make_session(tcp::generic_reno(), p));
  EXPECT_THROW(core::match_implementations(r.sender_trace, {}), std::invalid_argument);
}

TEST(Matcher, EmptyFitsAreSafeToRenderAndQuery) {
  core::MatchResult empty;
  EXPECT_FALSE(empty.identifies("Generic Reno"));
  EXPECT_THROW(empty.best(), std::out_of_range);
  const std::string out = empty.render();
  EXPECT_NE(out.find("no candidate fits"), std::string::npos);
}

TEST(Matcher, ZeroDataSenderTraceRendersAsSenderRow) {
  // A degenerate sender-side trace -- the local sender never got a byte
  // out (say, the capture started after the transfer stalled) -- must
  // still render sender-style rows: the role comes from the trace meta,
  // not from guessing via packet counts.
  trace::TraceMeta meta;
  meta.local = {0x0a000001, 1234};
  meta.remote = {0x0a000002, 80};
  meta.role = trace::LocalRole::kSender;
  trace::Trace degenerate(meta);
  trace::PacketRecord ack;  // one inbound pure ack, zero local data packets
  ack.timestamp = util::TimePoint(1000);
  ack.src = meta.remote;
  ack.dst = meta.local;
  ack.tcp.flags.ack = true;
  ack.tcp.ack = 1;
  ack.tcp.window = 8192;
  degenerate.push_back(ack);

  auto match = core::match_implementations(degenerate, {tcp::generic_reno()});
  ASSERT_EQ(match.fits.size(), 1u);
  EXPECT_EQ(match.role, trace::LocalRole::kSender);
  EXPECT_EQ(match.fits[0].role, trace::LocalRole::kSender);
  const std::string line = match.fits[0].one_line();
  EXPECT_NE(line.find("viol="), std::string::npos) << line;
  EXPECT_EQ(line.find("polviol="), std::string::npos) << line;  // not a receiver row
}

}  // namespace
}  // namespace tcpanaly
