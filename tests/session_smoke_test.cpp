// End-to-end simulator smoke tests: every profile must complete a clean
// bulk transfer, and the pathological profiles must show their signature
// misbehavior.
#include <gtest/gtest.h>

#include "tcp/profiles.hpp"
#include "tcp/session.hpp"

namespace tcpanaly {
namespace {

using tcp::SessionConfig;
using tcp::SessionResult;

class AllProfilesTransfer : public ::testing::TestWithParam<tcp::TcpProfile> {};

TEST_P(AllProfilesTransfer, CompletesCleanTransfer) {
  SessionConfig cfg = tcp::default_session();
  cfg.sender_profile = GetParam();
  cfg.sender.transfer_bytes = 100 * 1024;
  SessionResult r = tcp::run_session(cfg);
  EXPECT_TRUE(r.completed) << GetParam().name;
  EXPECT_EQ(r.receiver_stats.bytes_delivered, 100u * 1024u) << GetParam().name;
  EXPECT_GT(r.sender_trace.size(), 100u);
  EXPECT_GT(r.receiver_trace.size(), 100u);
  // Clean path + clean filter: sender trace delivers the full payload.
  EXPECT_EQ(r.sender_trace.unique_payload_bytes(trace::Direction::kFromLocal),
            100u * 1024u);
}

INSTANTIATE_TEST_SUITE_P(Registry, AllProfilesTransfer,
                         ::testing::ValuesIn(tcp::all_profiles()),
                         [](const ::testing::TestParamInfo<tcp::TcpProfile>& info) {
                           std::string name = info.param.name;
                           for (char& c : name)
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           return name;
                         });

TEST(SessionSmoke, LossyPathStillCompletes) {
  SessionConfig cfg = tcp::default_session();
  cfg.fwd_path.loss_prob = 0.02;
  cfg.rev_path.loss_prob = 0.01;
  cfg.seed = 7;
  SessionResult r = tcp::run_session(cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.receiver_stats.bytes_delivered, 100u * 1024u);
  EXPECT_GT(r.sender_stats.retransmissions, 0u);
}

TEST(SessionSmoke, TracesAreTimestampOrderedWithCleanFilters) {
  SessionConfig cfg = tcp::default_session();
  SessionResult r = tcp::run_session(cfg);
  ASSERT_TRUE(r.completed);
  for (std::size_t i = 1; i < r.sender_trace.size(); ++i)
    EXPECT_LE(r.sender_trace[i - 1].timestamp, r.sender_trace[i].timestamp) << i;
}

TEST(SessionSmoke, DeterministicForFixedSeed) {
  SessionConfig cfg = tcp::default_session();
  cfg.fwd_path.loss_prob = 0.03;
  cfg.seed = 42;
  SessionResult a = tcp::run_session(cfg);
  SessionResult b = tcp::run_session(cfg);
  ASSERT_EQ(a.sender_trace.size(), b.sender_trace.size());
  for (std::size_t i = 0; i < a.sender_trace.size(); ++i) {
    EXPECT_EQ(a.sender_trace[i].timestamp, b.sender_trace[i].timestamp);
    EXPECT_EQ(a.sender_trace[i].tcp, b.sender_trace[i].tcp);
  }
}

TEST(SessionSmoke, SolarisRetransmitsNeedlesslyOnLongRtt) {
  SessionConfig cfg = tcp::default_session();
  cfg.sender_profile = *tcp::find_profile("Solaris 2.4");
  cfg.fwd_path.prop_delay = util::Duration::millis(340);  // RTT ~680 ms
  cfg.rev_path.prop_delay = util::Duration::millis(340);
  SessionResult r = tcp::run_session(cfg);
  ASSERT_TRUE(r.completed);
  // No loss at all, yet a storm of retransmissions (Figure 5).
  EXPECT_EQ(r.fwd_network_drops, 0u);
  EXPECT_GT(r.sender_stats.retransmissions, r.sender_stats.data_packets / 4);
}

TEST(SessionSmoke, Linux10StormsUnderLoss) {
  SessionConfig cfg = tcp::default_session();
  cfg.sender_profile = *tcp::find_profile("Linux 1.0");
  cfg.fwd_path.loss_prob = 0.05;
  cfg.seed = 3;
  SessionResult r = tcp::run_session(cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.sender_stats.flight_retransmit_bursts, 0u);
  EXPECT_GT(r.sender_stats.retransmissions, r.sender_stats.data_packets / 5);
}

TEST(SessionSmoke, Net3BurstsWhenSynAckOmitsMss) {
  SessionConfig cfg = tcp::default_session();
  cfg.sender_profile = *tcp::find_profile("BSDI");
  cfg.receiver.omit_mss_option = true;
  cfg.receiver.recv_buffer = 16 * 1024;
  SessionResult r = tcp::run_session(cfg);
  ASSERT_TRUE(r.completed);
  // The first flight should slam out the whole offered window at once:
  // count data packets sent before the first data-covering ack returns.
  std::size_t first_flight = 0;
  for (const auto& rec : r.sender_trace.records()) {
    if (!r.sender_trace.is_from_local(rec) && rec.tcp.flags.ack &&
        trace::seq_gt(rec.tcp.ack, cfg.sender.initial_seq + 1))
      break;
    if (r.sender_trace.is_from_local(rec) && rec.tcp.payload_len > 0) ++first_flight;
  }
  EXPECT_GE(first_flight, 25u);  // ~30 x 536-byte packets fill the 16 KB window
}

}  // namespace
}  // namespace tcpanaly
