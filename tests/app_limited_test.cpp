// Application-limited receiver: a finite app read rate makes the offered
// window breathe, producing window-update acks. The transfer must still
// complete, be rate-limited by the app, and the analyzer must handle the
// shrinking/re-opening offered window without spurious findings.
#include <gtest/gtest.h>

#include "core/receiver_analyzer.hpp"
#include "core/sender_analyzer.hpp"
#include "tcp/profiles.hpp"
#include "tcp/session.hpp"

namespace tcpanaly {
namespace {

tcp::SessionResult run_app_limited(double read_rate, std::uint64_t seed = 1,
                                   double loss = 0.0) {
  tcp::SessionConfig cfg = tcp::default_session();
  cfg.sender_profile = tcp::generic_reno();
  cfg.receiver_profile = cfg.sender_profile;
  cfg.receiver.app_read_rate_bytes_per_sec = read_rate;
  cfg.receiver.recv_buffer = 8 * 1024;
  cfg.fwd_path.loss_prob = loss;
  cfg.sender.transfer_bytes = 64 * 1024;
  cfg.seed = seed;
  cfg.time_limit = util::Duration::seconds(120.0);
  return tcp::run_session(cfg);
}

TEST(AppLimited, TransferCompletesAtAppRate) {
  // Link 1 MB/s, app 40 kB/s: 64 KB should take ~1.6 s, not ~0.06 s.
  auto r = run_app_limited(40'000.0);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.receiver_stats.bytes_delivered, 64u * 1024u);
  EXPECT_GT(r.elapsed.to_seconds(), 1.2);
  EXPECT_LT(r.elapsed.to_seconds(), 4.0);
}

TEST(AppLimited, WindowUpdatesAppearInTrace) {
  auto r = run_app_limited(40'000.0);
  EXPECT_GT(r.receiver_stats.window_updates_sent, 5u);
  // The sender trace must show varying offered windows.
  std::uint32_t min_w = ~0u, max_w = 0;
  for (const auto& rec : r.sender_trace.records()) {
    if (r.sender_trace.is_from_local(rec) || !rec.tcp.flags.ack || rec.tcp.flags.syn)
      continue;
    min_w = std::min(min_w, rec.tcp.window);
    max_w = std::max(max_w, rec.tcp.window);
  }
  EXPECT_LT(min_w, 4u * 1024u);
  EXPECT_GT(max_w, 6u * 1024u);
}

TEST(AppLimited, SenderNeverExceedsOfferedWindow) {
  auto r = run_app_limited(40'000.0, 2);
  ASSERT_TRUE(r.completed);
  // Replay: every data segment must fit within the latest offered window
  // the sender could have seen (with slack for in-flight acks).
  trace::SeqNum una = 0;
  std::uint32_t win = 0;
  bool have = false;
  for (const auto& rec : r.sender_trace.records()) {
    if (!r.sender_trace.is_from_local(rec)) {
      if (rec.tcp.flags.ack && !rec.tcp.flags.syn) {
        if (!have || trace::seq_ge(rec.tcp.ack, una)) {
          una = rec.tcp.ack;
          win = rec.tcp.window;
          have = true;
        }
      }
      continue;
    }
    if (!have || rec.tcp.payload_len == 0) continue;
    // Slack: one window update may still be in flight (vantage).
    EXPECT_LE(trace::seq_diff(rec.tcp.seq_end(), una + win), 2 * 512)
        << rec.to_string();
  }
}

TEST(AppLimited, AnalyzerStaysCleanOnBreathingWindow) {
  for (std::uint64_t seed : {1, 2, 3}) {
    auto r = run_app_limited(40'000.0, seed, /*loss=*/0.01);
    ASSERT_TRUE(r.completed) << seed;
    auto rep = core::SenderAnalyzer(tcp::generic_reno()).analyze(r.sender_trace);
    EXPECT_TRUE(rep.violations.empty()) << "seed " << seed;
    EXPECT_EQ(rep.unexplained_retransmissions, 0u) << "seed " << seed;
    auto rcv = core::ReceiverAnalyzer(tcp::generic_reno()).analyze(r.receiver_trace);
    EXPECT_EQ(rcv.gratuitous_acks, 0u) << "seed " << seed;
    EXPECT_EQ(rcv.policy_violations, 0u) << "seed " << seed;
  }
}

TEST(AppLimited, InstantAppKeepsWindowConstant) {
  auto r = run_app_limited(0.0);
  for (const auto& rec : r.sender_trace.records()) {
    if (r.sender_trace.is_from_local(rec) || !rec.tcp.flags.ack || rec.tcp.flags.syn)
      continue;
    EXPECT_EQ(rec.tcp.window, 8u * 1024u);
  }
}

}  // namespace
}  // namespace tcpanaly
