// Streaming pipeline equivalence (the refactor's hard guarantee, layer by
// layer):
//
//   * Layer 1: draining open_capture_source() by hand reproduces the
//     classic readers record-for-record -- including their rejections,
//     byte-for-byte on the error message.
//   * Layer 2, kFull: the incremental AnnotationBuilder's finish_full()
//     assembles an AnnotatedTrace bit-identical to the one-pass
//     constructor on the drained trace (notes, handshake, cap-event
//     index, precomputed caps).
//   * Layer 2, kBounded: finish_summary() agrees with the offline
//     pipeline via diff_stream_summary, the same oracle the capture
//     fuzzer replays on every accepted input.
//   * Layer 3: analyze_capture_stream() reaches analyze_trace()'s exact
//     calibration and match results.
//
// Inputs: a grid of simulated sessions (loss/delay/duplication variety,
// both vantage points) plus every file in the checked-in fuzz regression
// corpus that any capture parser accepts.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "core/analyze.hpp"
#include "core/annotations.hpp"
#include "core/calibration.hpp"
#include "core/json_convert.hpp"
#include "core/stream_analysis.hpp"
#include "corpus/corpus.hpp"
#include "tcp/profiles.hpp"
#include "tcp/session.hpp"
#include "trace/pcap_io.hpp"
#include "trace/record_source.hpp"
#include "util/mem_tracker.hpp"

namespace tcpanaly::core {
namespace {

using trace::Trace;
using util::Duration;

const std::filesystem::path kCorpusDir = TCPANALY_FUZZ_CORPUS_DIR;

tcp::SessionResult scenario(const char* impl, double loss, std::int64_t delay_ms,
                            std::uint64_t seed, std::uint32_t bytes = 64 * 1024) {
  corpus::ScenarioParams p;
  p.loss_prob = loss;
  p.one_way_delay = Duration::millis(delay_ms);
  p.transfer_bytes = bytes;
  p.seed = seed;
  return tcp::run_session(corpus::make_session(*tcp::find_profile(impl), p));
}

/// Every (trace, vantage) pair the suite sweeps: a spread of loss rates,
/// delays, and implementations, plus an IRIX-style filter-duplication
/// artifact (every outbound record doubled) so the needs_materialized_rerun
/// path is exercised too.
std::vector<std::pair<Trace, bool>> grid() {
  std::vector<std::pair<Trace, bool>> out;
  const struct {
    const char* impl;
    double loss;
    std::int64_t delay_ms;
    std::uint64_t seed;
  } cells[] = {
      {"Generic Reno", 0.0, 20, 7},  {"Generic Reno", 0.02, 20, 17},
      {"Generic Tahoe", 0.05, 60, 3}, {"Linux 1.0", 0.02, 20, 17},
      {"Solaris 2.4", 0.0, 340, 9},   {"Windows 95", 0.03, 200, 5},
  };
  for (const auto& c : cells) {
    auto r = scenario(c.impl, c.loss, c.delay_ms, c.seed);
    out.emplace_back(r.sender_trace, true);
    out.emplace_back(r.receiver_trace, false);
  }
  // Filter-added duplicates: later copy at the same timestamp.
  auto r = scenario("Generic Reno", 0.0, 20, 7);
  Trace doubled(r.sender_trace.meta());
  for (std::size_t i = 0; i < r.sender_trace.size(); ++i) {
    const auto& rec = r.sender_trace[i];
    doubled.push_back(rec);
    if (r.sender_trace.is_from_local(rec)) doubled.push_back(rec);
  }
  out.emplace_back(std::move(doubled), true);
  // An empty trace: endpoints never resolve, every detector sees nothing.
  // Default meta, as the readers leave it when a capture holds no records.
  out.emplace_back(Trace(trace::TraceMeta{}), true);
  return out;
}

std::string pcap_bytes(const Trace& tr) {
  std::ostringstream out;
  trace::write_pcap(out, tr);
  return out.str();
}

std::string pcapng_bytes(const Trace& tr) {
  std::ostringstream out;
  trace::write_pcapng(out, tr);
  return out.str();
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void expect_same_records(const Trace& a, const Trace& b, const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  EXPECT_EQ(a.meta().local.to_string(), b.meta().local.to_string()) << label;
  EXPECT_EQ(a.meta().remote.to_string(), b.meta().remote.to_string()) << label;
  EXPECT_EQ(static_cast<int>(a.meta().role), static_cast<int>(b.meta().role)) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& x = a[i];
    const auto& y = b[i];
    ASSERT_EQ(x.timestamp.count(), y.timestamp.count()) << label << " record " << i;
    ASSERT_EQ(x.src.to_string(), y.src.to_string()) << label << " record " << i;
    ASSERT_EQ(x.dst.to_string(), y.dst.to_string()) << label << " record " << i;
    ASSERT_EQ(x.tcp.seq, y.tcp.seq) << label << " record " << i;
    ASSERT_EQ(x.tcp.ack, y.tcp.ack) << label << " record " << i;
    ASSERT_EQ(x.tcp.window, y.tcp.window) << label << " record " << i;
    ASSERT_EQ(x.tcp.payload_len, y.tcp.payload_len) << label << " record " << i;
    ASSERT_EQ(x.tcp.flags.syn, y.tcp.flags.syn) << label << " record " << i;
    ASSERT_EQ(x.tcp.flags.fin, y.tcp.flags.fin) << label << " record " << i;
    ASSERT_EQ(x.tcp.flags.ack, y.tcp.flags.ack) << label << " record " << i;
    ASSERT_EQ(x.tcp.flags.rst, y.tcp.flags.rst) << label << " record " << i;
  }
}

/// Drain a capture byte stream through open_capture_source into a Trace
/// with EndpointTally resolution -- the streaming consumer's view of what
/// the classic reader materializes.
struct DrainResult {
  Trace trace{trace::TraceMeta{}};
  std::size_t skipped_frames = 0;
};

DrainResult drain(const std::string& bytes, bool local_is_sender) {
  std::istringstream in(bytes);
  auto source = trace::open_capture_source(in);
  DrainResult out;
  trace::EndpointTally tally;
  while (auto rec = source->next()) {
    tally.add(*rec);
    out.trace.push_back(*rec);
  }
  out.skipped_frames = source->skipped_frames();
  tally.resolve(out.trace.meta(), local_is_sender);
  return out;
}

TEST(StreamEquivalence, SourceDrainMatchesClassicReaders) {
  for (const auto& [tr, local_is_sender] : grid()) {
    if (tr.size() == 0) continue;  // zero-record pcap: covered below
    {
      const std::string bytes = pcap_bytes(tr);
      std::istringstream in(bytes);
      const trace::PcapReadResult classic = trace::read_pcap(in, local_is_sender);
      const DrainResult streamed = drain(bytes, local_is_sender);
      EXPECT_EQ(classic.skipped_frames, streamed.skipped_frames);
      expect_same_records(classic.trace, streamed.trace, "pcap");
    }
    {
      const std::string bytes = pcapng_bytes(tr);
      std::istringstream in(bytes);
      const trace::PcapReadResult classic = trace::read_pcapng(in, local_is_sender);
      const DrainResult streamed = drain(bytes, local_is_sender);
      EXPECT_EQ(classic.skipped_frames, streamed.skipped_frames);
      expect_same_records(classic.trace, streamed.trace, "pcapng");
    }
  }
}

TEST(StreamEquivalence, RejectionsMatchByteForByte) {
  // Truncations of a valid capture at awkward offsets: both paths must
  // agree on accept-vs-reject, and rejected inputs must carry the classic
  // reader's exact diagnostic.
  const auto r = scenario("Generic Reno", 0.02, 20, 17, 16 * 1024);
  for (const std::string& whole : {pcap_bytes(r.sender_trace), pcapng_bytes(r.sender_trace)}) {
    const bool is_pcapng = whole.compare(0, 4, "\x0a\x0d\x0d\x0a", 4) == 0;
    for (const std::size_t cut : {std::size_t{0}, std::size_t{3}, std::size_t{17},
                                  std::size_t{40}, whole.size() / 2, whole.size() - 3}) {
      const std::string bytes = whole.substr(0, cut);
      std::string classic_err;
      bool classic_ok = true;
      try {
        std::istringstream in(bytes);
        if (is_pcapng)
          (void)trace::read_pcapng(in);
        else
          (void)trace::read_pcap(in);
      } catch (const std::runtime_error& e) {
        classic_ok = false;
        classic_err = e.what();
      }
      std::string stream_err;
      bool stream_ok = true;
      try {
        std::istringstream in(bytes);
        auto source = is_pcapng
                          ? std::unique_ptr<trace::RecordSource>(
                                new trace::PcapngSource(in))
                          : std::unique_ptr<trace::RecordSource>(new trace::PcapSource(in));
        while (source->next()) {
        }
      } catch (const std::runtime_error& e) {
        stream_ok = false;
        stream_err = e.what();
      }
      EXPECT_EQ(classic_ok, stream_ok) << "cut=" << cut;
      EXPECT_EQ(classic_err, stream_err) << "cut=" << cut;
    }
  }
}

TEST(StreamEquivalence, FullModeBuildsBitIdenticalAnnotation) {
  const std::vector<Duration> graces = {Duration::millis(30), Duration::millis(5)};
  for (const auto& [tr, local_is_sender] : grid()) {
    AnnotationBuilder::Options bopts;
    bopts.mode = AnnotationBuilder::Mode::kFull;
    bopts.local_is_sender = local_is_sender;
    bopts.cap_graces = graces;
    AnnotationBuilder builder(std::move(bopts));
    trace::InMemorySource source(tr);
    while (auto rec = source.next()) builder.add(*rec);
    const BuiltAnnotation built = builder.finish_full();
    ASSERT_TRUE(built.trace);
    ASSERT_TRUE(built.annotation);
    EXPECT_EQ(built.records_streamed, tr.size());
    expect_same_records(*built.trace, tr, "materialized");

    const AnnotatedTrace offline(*built.trace, graces);
    const AnnotatedTrace& streamed = *built.annotation;
    ASSERT_EQ(streamed.size(), offline.size());
    for (std::size_t i = 0; i < offline.size(); ++i) {
      const RecordNote& a = streamed.note(i);
      const RecordNote& b = offline.note(i);
      ASSERT_EQ(static_cast<int>(a.kind), static_cast<int>(b.kind)) << "record " << i;
      ASSERT_EQ(a.from_local, b.from_local) << "record " << i;
      ASSERT_EQ(a.established, b.established) << "record " << i;
      ASSERT_EQ(a.have_data, b.have_data) << "record " << i;
      ASSERT_EQ(a.snd_una, b.snd_una) << "record " << i;
      ASSERT_EQ(a.snd_max, b.snd_max) << "record " << i;
      ASSERT_EQ(a.offered_window, b.offered_window) << "record " << i;
      ASSERT_EQ(a.mss, b.mss) << "record " << i;
      ASSERT_EQ(a.offered_mss, b.offered_mss) << "record " << i;
    }
    EXPECT_EQ(streamed.handshake().handshake_seen, offline.handshake().handshake_seen);
    EXPECT_EQ(streamed.handshake().synack_had_mss, offline.handshake().synack_had_mss);
    EXPECT_EQ(streamed.handshake().iss, offline.handshake().iss);
    EXPECT_EQ(streamed.handshake().mss, offline.handshake().mss);
    EXPECT_EQ(streamed.handshake().offered_mss, offline.handshake().offered_mss);
    EXPECT_EQ(streamed.handshake().initial_offered_window,
              offline.handshake().initial_offered_window);
    ASSERT_EQ(streamed.send_events().size(), offline.send_events().size());
    for (std::size_t i = 0; i < offline.send_events().size(); ++i) {
      EXPECT_EQ(streamed.send_events()[i].record_index,
                offline.send_events()[i].record_index);
      EXPECT_EQ(streamed.send_events()[i].seq, offline.send_events()[i].seq);
      EXPECT_EQ(streamed.send_events()[i].end, offline.send_events()[i].end);
    }
    ASSERT_EQ(streamed.ack_frontier().size(), offline.ack_frontier().size());
    for (std::size_t i = 0; i < offline.ack_frontier().size(); ++i) {
      EXPECT_EQ(streamed.ack_frontier()[i].record_index,
                offline.ack_frontier()[i].record_index);
      EXPECT_EQ(streamed.ack_frontier()[i].ack, offline.ack_frontier()[i].ack);
    }
    for (Duration g : {Duration::zero(), Duration::millis(5), Duration::millis(30),
                       Duration::millis(800)}) {
      EXPECT_EQ(streamed.sender_window_cap(g), offline.sender_window_cap(g));
    }
  }
}

TEST(StreamEquivalence, BoundedSummaryMatchesOfflinePipeline) {
  for (const auto& [tr, local_is_sender] : grid()) {
    AnnotationBuilder::Options bopts;
    bopts.mode = AnnotationBuilder::Mode::kBounded;
    bopts.local_is_sender = local_is_sender;
    bopts.cap_graces = {Duration::millis(30)};
    AnnotationBuilder builder(std::move(bopts));
    trace::InMemorySource source(tr);
    while (auto rec = source.next()) builder.add(*rec);
    const StreamSummary summary = builder.finish_summary();
    EXPECT_EQ(summary.records_streamed, tr.size());
    EXPECT_EQ(diff_stream_summary(summary, tr), "") << "records=" << tr.size();
  }
}

TEST(StreamEquivalence, BoundedSummaryMatchesOnFuzzCorpusAcceptedFiles) {
  ASSERT_TRUE(std::filesystem::is_directory(kCorpusDir)) << kCorpusDir;
  std::size_t accepted = 0;
  for (const auto& entry : std::filesystem::directory_iterator(kCorpusDir)) {
    if (!entry.is_regular_file()) continue;
    const std::string bytes = read_file(entry.path());
    // Whichever classic parser accepts the bytes defines the expectation.
    trace::PcapReadResult classic;
    bool ok = false;
    try {
      std::istringstream in(bytes);
      classic = trace::read_pcap(in);
      ok = true;
    } catch (const std::runtime_error&) {
    }
    if (!ok) {
      try {
        std::istringstream in(bytes);
        classic = trace::read_pcapng(in);
        ok = true;
      } catch (const std::runtime_error&) {
      }
    }
    if (!ok) continue;
    ++accepted;
    std::istringstream in(bytes);
    auto source = trace::open_capture_source(in);
    AnnotationBuilder::Options bopts;
    bopts.mode = AnnotationBuilder::Mode::kBounded;
    AnnotationBuilder builder(std::move(bopts));
    while (auto rec = source->next()) builder.add(*rec);
    EXPECT_EQ(diff_stream_summary(builder.finish_summary(), classic.trace), "")
        << entry.path();
  }
  EXPECT_GE(accepted, 1u);  // the corpus keeps at least one accepted capture
}

TEST(StreamEquivalence, AnalyzeCaptureStreamMatchesAnalyzeTrace) {
  for (const auto& [tr, local_is_sender] : grid()) {
    if (tr.size() == 0) continue;  // analyze_trace requires a nonempty trace
    const std::string bytes = pcap_bytes(tr);
    std::istringstream classic_in(bytes);
    const trace::PcapReadResult classic = trace::read_pcap(classic_in, local_is_sender);
    MatchOptions mopts;
    mopts.jobs = 1;
    const TraceAnalysis offline = analyze_trace(classic.trace, tcp::all_profiles(), mopts);

    std::istringstream stream_in(bytes);
    auto source = trace::open_capture_source(stream_in);
    AnalyzeOptions aopts;
    aopts.match = mopts;
    util::MemTracker mem;
    const StreamedTraceAnalysis streamed = analyze_capture_stream(
        *source, local_is_sender, tcp::all_profiles(), aopts, nullptr, &mem);
    EXPECT_EQ(streamed.records_streamed, classic.trace.size());
    EXPECT_GT(streamed.peak_bytes, 0u);
    EXPECT_GE(mem.peak(), streamed.peak_bytes);

    EXPECT_EQ(to_json(streamed.analysis.calibration).dump(),
              to_json(offline.calibration).dump());
    ASSERT_EQ(streamed.analysis.match.fits.size(), offline.match.fits.size());
    for (std::size_t i = 0; i < offline.match.fits.size(); ++i) {
      EXPECT_EQ(streamed.analysis.match.fits[i].profile.name,
                offline.match.fits[i].profile.name);
      EXPECT_DOUBLE_EQ(streamed.analysis.match.fits[i].penalty,
                       offline.match.fits[i].penalty);
      EXPECT_EQ(streamed.analysis.match.fits[i].fit, offline.match.fits[i].fit);
    }
  }
}

}  // namespace
}  // namespace tcpanaly::core
