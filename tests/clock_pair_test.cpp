// Tests for trace-pair clock calibration: relative skew and step
// adjustments detectable only with both endpoints' traces (section 3.1.4
// / [Pa97b]).
#include <gtest/gtest.h>

#include "core/clock_pair.hpp"
#include "tcp/profiles.hpp"
#include "tcp/session.hpp"

namespace tcpanaly::core {
namespace {

tcp::SessionResult run_with(std::function<void(tcp::SessionConfig&)> mutate,
                            std::uint64_t seed = 1) {
  tcp::SessionConfig cfg = tcp::default_session();
  cfg.sender_profile = tcp::generic_reno();
  cfg.receiver_profile = cfg.sender_profile;
  cfg.sender.transfer_bytes = 200 * 1024;  // a few seconds of traffic
  cfg.fwd_path.rate_bytes_per_sec = 125'000.0;
  cfg.rev_path.rate_bytes_per_sec = 125'000.0;
  cfg.seed = seed;
  mutate(cfg);
  return tcp::run_session(cfg);
}

TEST(ClockPair, AgreementOnCleanClocks) {
  auto r = run_with([](tcp::SessionConfig&) {});
  auto rep = compare_clocks(r.sender_trace, r.receiver_trace);
  EXPECT_GT(rep.fwd_samples, 50u);
  EXPECT_GT(rep.rev_samples, 50u);
  EXPECT_TRUE(rep.clocks_agree()) << rep.summary();
}

TEST(ClockPair, DetectsRelativeSkew) {
  // Receiver clock runs fast by 400 ppm: invisible in either trace alone,
  // but the OWD trends diverge with opposite signs across directions.
  auto r = run_with([](tcp::SessionConfig& cfg) {
    cfg.receiver_filter.clock.set_skew_ppm(400.0);
  });
  auto rep = compare_clocks(r.sender_trace, r.receiver_trace);
  EXPECT_TRUE(rep.skew_detected) << rep.summary();
  EXPECT_NEAR(rep.relative_skew_ppm, 400.0, 150.0);
}

TEST(ClockPair, SkewSignFollowsFasterClock) {
  auto r = run_with([](tcp::SessionConfig& cfg) {
    cfg.sender_filter.clock.set_skew_ppm(500.0);  // SENDER clock fast
  });
  auto rep = compare_clocks(r.sender_trace, r.receiver_trace);
  ASSERT_TRUE(rep.skew_detected) << rep.summary();
  EXPECT_LT(rep.relative_skew_ppm, 0.0);  // receiver slow relative to sender
}

TEST(ClockPair, DetectsForwardAdjustment) {
  // The receiver's clock is stepped +40 ms mid-connection: in the
  // receiver's own trace this looks like elevated delay (undetectable
  // alone, as the paper notes); the pair analysis nails it.
  auto r = run_with([](tcp::SessionConfig& cfg) {
    cfg.receiver_filter.clock.add_step(util::TimePoint(1'000'000),
                                       util::Duration::millis(40));
  });
  auto rep = compare_clocks(r.sender_trace, r.receiver_trace);
  ASSERT_FALSE(rep.steps.empty()) << rep.summary();
  EXPECT_NEAR(rep.steps[0].delta.to_millis(), 40.0, 15.0);
}

TEST(ClockPair, CongestionIsNotMistakenForClockError) {
  // Heavy queueing at a bottleneck raises BOTH directions' measured
  // delays; same-sign trends must not be reported as skew.
  auto r = run_with([](tcp::SessionConfig& cfg) {
    cfg.fwd_path.bottleneck_rate_bytes_per_sec = 30'000.0;
    cfg.fwd_path.bottleneck_queue_limit = 40;
    cfg.sender.transfer_bytes = 100 * 1024;
  });
  auto rep = compare_clocks(r.sender_trace, r.receiver_trace);
  EXPECT_FALSE(rep.skew_detected) << rep.summary();
}

TEST(ClockPair, TooFewSamplesYieldsNoVerdict) {
  trace::Trace empty_s, empty_r;
  empty_s.meta().role = trace::LocalRole::kSender;
  empty_r.meta().role = trace::LocalRole::kReceiver;
  auto rep = compare_clocks(empty_s, empty_r);
  EXPECT_EQ(rep.fwd_samples, 0u);
  EXPECT_TRUE(rep.clocks_agree());
}

}  // namespace
}  // namespace tcpanaly::core

namespace tcpanaly::core {
namespace {

TEST(ClockPair, SkewSurvivesCrossTrafficNoise) {
  // A competing Poisson load at a bottleneck perturbs queueing delays;
  // the low-quantile trend estimator must still recover the skew.
  auto r = run_with([](tcp::SessionConfig& cfg) {
    cfg.receiver_filter.clock.set_skew_ppm(400.0);
    // Bottleneck with headroom: the queue reaches equilibrium instead of
    // growing for the whole connection (a monotone standing queue is a
    // genuine delay trend no estimator should call clock skew). A longer
    // transfer gives the drift room to clear the queueing noise floor --
    // the same reason [Pa97b] works over whole measurement sessions.
    cfg.sender.transfer_bytes = 1024 * 1024;
    cfg.fwd_path.bottleneck_rate_bytes_per_sec = 400'000.0;
    cfg.fwd_path.bottleneck_queue_limit = 60;
    cfg.fwd_path.cross_traffic_intensity = 0.3;
  });
  auto rep = compare_clocks(r.sender_trace, r.receiver_trace);
  ASSERT_TRUE(rep.skew_detected) << rep.summary();
  EXPECT_NEAR(rep.relative_skew_ppm, 400.0, 200.0);
}

TEST(ClockPair, CrossTrafficAloneIsNotSkew) {
  auto r = run_with([](tcp::SessionConfig& cfg) {
    cfg.fwd_path.bottleneck_rate_bytes_per_sec = 400'000.0;
    cfg.fwd_path.bottleneck_queue_limit = 60;
    cfg.fwd_path.cross_traffic_intensity = 0.4;
  });
  auto rep = compare_clocks(r.sender_trace, r.receiver_trace);
  EXPECT_FALSE(rep.skew_detected) << rep.summary();
}

}  // namespace
}  // namespace tcpanaly::core
