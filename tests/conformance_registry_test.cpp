// Requirement-registry contract tests: stable unique IDs, full scenario
// coverage (every registered requirement has a deliberately violating AND
// a conforming corpus trace), violation scenarios fail exactly their
// target requirement, and the streaming evaluator's verdicts are
// bit-identical to the materialized checker over the whole scenario grid.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "core/conformance.hpp"
#include "core/stream_analysis.hpp"
#include "netsim/conformance_scenarios.hpp"
#include "trace/record_source.hpp"

namespace tcpanaly::core {
namespace {

TEST(ConformanceRegistry, StableUniqueIds) {
  const auto& registry = requirement_registry();
  ASSERT_FALSE(registry.empty());
  std::set<std::string> ids;
  for (const auto& req : registry) {
    ASSERT_NE(req.id, nullptr);
    EXPECT_TRUE(ids.insert(req.id).second) << "duplicate id " << req.id;
    EXPECT_NE(std::string(req.id), "");
    EXPECT_NE(std::string(req.title), "");
    EXPECT_NE(std::string(req.reference), "");
    // IDs lead with the governing document, e.g. "RFC1122-...".
    EXPECT_EQ(std::string(req.id).rfind("RFC", 0), 0u) << req.id;
    EXPECT_EQ(find_requirement(req.id), &req);
  }
  EXPECT_EQ(find_requirement("no-such-requirement"), nullptr);
}

TEST(ConformanceRegistry, LevelsSplitMustAndShould) {
  std::size_t must = 0, should = 0;
  for (const auto& req : requirement_registry())
    (req.level == Level::kMust ? must : should) += 1;
  EXPECT_GT(must, 0u);
  EXPECT_GT(should, 0u);
}

TEST(ConformanceRegistry, ScenarioMatrixCoversEveryRequirement) {
  // id -> (violating count, conforming count)
  std::map<std::string, std::pair<int, int>> coverage;
  for (const auto& s : sim::conformance_scenarios()) {
    ASSERT_NE(find_requirement(s.requirement_id), nullptr)
        << s.name << " targets unregistered requirement " << s.requirement_id;
    auto& [violating, conforming] = coverage[s.requirement_id];
    (s.violate ? violating : conforming) += 1;
  }
  for (const auto& req : requirement_registry()) {
    const auto it = coverage.find(req.id);
    ASSERT_NE(it, coverage.end()) << "no scenario for " << req.id;
    EXPECT_GE(it->second.first, 1) << "no violating scenario for " << req.id;
    EXPECT_GE(it->second.second, 1) << "no conforming scenario for " << req.id;
  }
}

TEST(ConformanceRegistry, ReportsAlwaysCoverTheWholeRegistryInOrder) {
  for (const auto& s : sim::conformance_scenarios()) {
    const ConformanceReport rep =
        check_conformance(sim::make_conformance_trace(s));
    const auto& registry = requirement_registry();
    ASSERT_EQ(rep.results.size(), registry.size()) << s.name;
    for (std::size_t i = 0; i < registry.size(); ++i)
      EXPECT_EQ(rep.results[i].requirement, &registry[i]) << s.name;
  }
}

TEST(ConformanceRegistry, ViolationScenariosFailExactlyTheirRequirement) {
  for (const auto& s : sim::conformance_scenarios()) {
    if (!s.violate) continue;
    const ConformanceReport rep =
        check_conformance(sim::make_conformance_trace(s));
    for (const auto& r : rep.results) {
      if (std::string(r.requirement->id) == s.requirement_id)
        EXPECT_EQ(r.verdict, Verdict::kFail)
            << s.name << ": " << r.requirement->id << "\n" << rep.render();
      else
        EXPECT_NE(r.verdict, Verdict::kFail)
            << s.name << " also fails " << r.requirement->id << "\n"
            << rep.render();
    }
  }
}

TEST(ConformanceRegistry, ConformingScenariosExerciseAndPassTheirRequirement) {
  for (const auto& s : sim::conformance_scenarios()) {
    if (s.violate) continue;
    const ConformanceReport rep =
        check_conformance(sim::make_conformance_trace(s));
    EXPECT_EQ(rep.failures(), 0u) << s.name << "\n" << rep.render();
    const RequirementResult* target = rep.find(s.requirement_id);
    ASSERT_NE(target, nullptr) << s.name;
    EXPECT_EQ(target->verdict, Verdict::kPass)
        << s.name << "\n" << rep.render();
  }
}

/// Streaming (kFull and kBounded) verdicts must be bit-identical to the
/// materialized checker over every scenario trace -- these traces are
/// small enough that bounded mode never evicts, so conformance_is_exact
/// must hold everywhere.
TEST(ConformanceRegistry, StreamingVerdictsMatchMaterializedChecker) {
  for (const auto& s : sim::conformance_scenarios()) {
    const trace::Trace tr = sim::make_conformance_trace(s);
    const ConformanceReport offline = check_conformance(tr);
    for (const auto mode :
         {AnnotationBuilder::Mode::kFull, AnnotationBuilder::Mode::kBounded}) {
      AnnotationBuilder::Options bopts;
      bopts.mode = mode;
      bopts.local_is_sender = !s.receiver_vantage;
      AnnotationBuilder builder(std::move(bopts));
      trace::InMemorySource source(tr);
      while (auto rec = source.next()) builder.add(*rec);
      const StreamSummary summary = builder.finish_summary();
      EXPECT_TRUE(summary.conformance_is_exact) << s.name;
      ASSERT_EQ(summary.conformance.results.size(), offline.results.size())
          << s.name;
      for (std::size_t i = 0; i < offline.results.size(); ++i) {
        EXPECT_EQ(summary.conformance.results[i].verdict,
                  offline.results[i].verdict)
            << s.name << " " << offline.results[i].requirement->id;
        EXPECT_EQ(summary.conformance.results[i].evidence,
                  offline.results[i].evidence)
            << s.name << " " << offline.results[i].requirement->id;
      }
      EXPECT_EQ(diff_stream_summary(summary, tr), "") << s.name;
    }
  }
}

}  // namespace
}  // namespace tcpanaly::core
