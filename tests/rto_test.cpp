// Unit tests for the three RTO estimators (paper sections 8.5/8.6):
// BSD's fixed-point Jacobson/Karn on 500 ms ticks, the broken Solaris
// timer, and the Linux 1.0 timer with irregular backoff.
#include <gtest/gtest.h>

#include "tcp/rto.hpp"

namespace tcpanaly::tcp {
namespace {

using util::Duration;

// ---------------------------------------------------------------- BSD

TEST(BsdRto, DefaultBeforeAnySample) {
  BsdRto rto;
  EXPECT_EQ(rto.current(), Duration::seconds(3.0));
}

TEST(BsdRto, FirstSampleInitializesFixedPoint) {
  BsdRto rto;
  rto.on_rtt_sample(Duration::millis(800), false);  // 2 ticks
  EXPECT_EQ(rto.srtt_scaled(), 2 << 3);
  EXPECT_EQ(rto.rttvar_scaled(), 2 << 1);
  // RTO = srtt + 4*rttvar = 2 + 4 ticks = 3 s
  EXPECT_EQ(rto.current(), Duration::seconds(3.0));
}

TEST(BsdRto, NeverBelowOneSecondFloor) {
  BsdRto rto;
  for (int i = 0; i < 50; ++i) rto.on_rtt_sample(Duration::millis(10), false);
  EXPECT_GE(rto.current(), Duration::seconds(1.0));
}

TEST(BsdRto, KarnDiscardsRetransmittedSamples) {
  BsdRto rto;
  rto.on_rtt_sample(Duration::millis(800), false);
  const Duration before = rto.current();
  rto.on_rtt_sample(Duration::seconds(30.0), /*of_retransmitted_segment=*/true);
  EXPECT_EQ(rto.current(), before);
}

TEST(BsdRto, BackoffDoublesAndCaps) {
  BsdRto rto;
  rto.on_rtt_sample(Duration::millis(800), false);
  const Duration base = rto.current();
  rto.on_timeout();
  EXPECT_EQ(rto.current(), base * 2);
  rto.on_timeout();
  EXPECT_EQ(rto.current(), base * 4);
  for (int i = 0; i < 20; ++i) rto.on_timeout();
  EXPECT_LE(rto.current(), Duration::seconds(64.0));
}

TEST(BsdRto, SampleClearsBackoff) {
  BsdRto rto;
  rto.on_rtt_sample(Duration::millis(800), false);
  rto.on_timeout();
  rto.on_timeout();
  rto.on_rtt_sample(Duration::millis(800), false);
  EXPECT_EQ(rto.backoff_shift(), 0);
}

TEST(BsdRto, AdaptsUpwardToLongRtts) {
  BsdRto rto;
  rto.on_rtt_sample(Duration::millis(500), false);
  for (int i = 0; i < 20; ++i) rto.on_rtt_sample(Duration::seconds(4.0), false);
  EXPECT_GE(rto.current(), Duration::seconds(4.0));
}

TEST(BsdRto, AckDoesNotResetBackoff) {
  // BSD keeps its backoff until a fresh sample; merely acking
  // retransmitted data must not collapse the timer (unlike Solaris).
  BsdRto rto;
  rto.on_rtt_sample(Duration::millis(800), false);
  rto.on_timeout();
  const Duration backed_off = rto.current();
  rto.on_ack(/*covered_retransmitted_data=*/true);
  EXPECT_EQ(rto.current(), backed_off);
}

// ------------------------------------------------------------- Solaris

TEST(SolarisBrokenRto, StartsNear300ms) {
  SolarisBrokenRto rto;
  EXPECT_EQ(rto.current(), Duration::millis(300));
}

TEST(SolarisBrokenRto, AckOfRetransmittedDataResetsBackoff) {
  SolarisBrokenRto rto;
  rto.on_timeout();
  rto.on_timeout();
  EXPECT_EQ(rto.current(), Duration::millis(1200));
  rto.on_ack(/*covered_retransmitted_data=*/true);
  // "restored to its erroneously small value immediately"
  EXPECT_EQ(rto.current(), Duration::millis(300));
}

TEST(SolarisBrokenRto, PlainAckKeepsBackoff) {
  SolarisBrokenRto rto;
  rto.on_timeout();
  rto.on_ack(/*covered_retransmitted_data=*/false);
  EXPECT_EQ(rto.current(), Duration::millis(600));
}

TEST(SolarisBrokenRto, AdaptsFarTooSlowly) {
  SolarisBrokenRto rto;
  // A correct estimator's RTO exceeds the RTT after ONE clean sample
  // (srtt + 4*rttvar); Solaris' weak gains leave it premature for several.
  for (int i = 0; i < 3; ++i) rto.on_rtt_sample(Duration::millis(680), false);
  EXPECT_LT(rto.current(), Duration::millis(680));
  // It does adapt eventually, far too late.
  for (int i = 0; i < 200; ++i) rto.on_rtt_sample(Duration::millis(680), false);
  EXPECT_GE(rto.current(), Duration::millis(680));
}

TEST(SolarisBrokenRto, GuaranteedPrematureOnLongRtt) {
  // The paper's core claim: RTT above the initial RTO means the first
  // packet is retransmitted whether needed or not, and Karn + the reset
  // keep it that way.
  SolarisBrokenRto rto;
  for (int round = 0; round < 50; ++round) {
    ASSERT_LT(rto.current(), Duration::millis(680)) << "round " << round;
    rto.on_timeout();                     // fires before the ack arrives
    rto.on_rtt_sample(Duration::millis(680), true);  // Karn: discarded
    rto.on_ack(true);                     // ack covers retransmitted data
  }
}

// -------------------------------------------------------------- Linux

TEST(Linux10Rto, BacksOffIrregularly) {
  Linux10Rto rto;
  const double base = rto.current().to_seconds();
  rto.on_timeout();
  const double after1 = rto.current().to_seconds();
  rto.on_timeout();
  const double after2 = rto.current().to_seconds();
  EXPECT_NEAR(after1 / base, 2.0, 1e-9);
  EXPECT_NEAR(after2 / after1, 1.5, 1e-9);  // "not fully doubling"
}

TEST(Linux10Rto, AnyAckResetsBackoff) {
  Linux10Rto rto;
  rto.on_timeout();
  rto.on_timeout();
  rto.on_ack(false);
  EXPECT_EQ(rto.current(), Duration::seconds(1.0));
}

TEST(Linux10Rto, TracksSmoothedRttAggressively) {
  Linux10Rto rto;
  for (int i = 0; i < 50; ++i) rto.on_rtt_sample(Duration::seconds(2.0), false);
  // Barely above the RTT: the early-firing behavior of section 8.5.
  EXPECT_GE(rto.current(), Duration::seconds(2.0));
  EXPECT_LT(rto.current(), Duration::seconds(2.5));
}

TEST(RtoEstimator, FactoryDispatch) {
  EXPECT_NE(dynamic_cast<BsdRto*>(RtoEstimator::make(RtoScheme::kBsd).get()), nullptr);
  EXPECT_NE(dynamic_cast<SolarisBrokenRto*>(
                RtoEstimator::make(RtoScheme::kSolarisBroken).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<Linux10Rto*>(RtoEstimator::make(RtoScheme::kLinux10).get()),
            nullptr);
}

}  // namespace
}  // namespace tcpanaly::tcp
