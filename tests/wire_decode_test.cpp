// Real-capture decode reproducers: frames a busy link actually produces
// that the original codec mishandled. Each case here failed before its fix
// in decode_frame/decode_ip_packet:
//   * non-first IP fragments decoded as if a TCP header were present
//     (payload bytes misread as seq/ack/flags),
//   * TSO/GSO frames (ip_total == 0) silently vanished,
//   * the LINKTYPE_LINUX_SLL bound demanded two bytes past the header,
//     and LINKTYPE_LINUX_SLL2 was unsupported,
//   * a third stacked VLAN tag walked the frame as if it were IPv4.
#include <cstdint>
#include <sstream>
#include <vector>

#include "gtest/gtest.h"
#include "trace/record_source.hpp"
#include "trace/wire.hpp"

namespace tcpanaly::trace {
namespace {

PacketRecord sample_record(std::uint32_t seq, std::uint32_t payload) {
  PacketRecord rec;
  rec.src = {0x0a000001, 4000};
  rec.dst = {0x0a000002, 5000};
  rec.tcp.seq = seq;
  rec.tcp.flags.ack = true;
  rec.tcp.ack = 900;
  rec.tcp.payload_len = payload;
  return rec;
}

// IP header field offsets within an Ethernet frame from encode_frame.
constexpr std::size_t kIpTotalOff = kEthernetHeaderLen + 2;
constexpr std::size_t kIpFragOff = kEthernetHeaderLen + 6;

void set_be16(std::vector<std::uint8_t>& frame, std::size_t off, std::uint16_t v) {
  frame[off] = static_cast<std::uint8_t>(v >> 8);
  frame[off + 1] = static_cast<std::uint8_t>(v & 0xff);
}

// ------------------------------------------------------- IP fragmentation

TEST(WireDecode, NonFirstFragmentIsSkipped) {
  // A continuation fragment carries datagram payload where the TCP header
  // would sit; protocol is still 6. The old decoder never read the
  // fragment field and invented a TCP segment out of payload bytes.
  auto frame = encode_frame(sample_record(100, 64));
  set_be16(frame, kIpFragOff, 0x00b9);  // offset 185*8, MF clear
  EXPECT_FALSE(decode_frame(frame).has_value());

  // MF set with a nonzero offset is still a continuation fragment.
  set_be16(frame, kIpFragOff, 0x2001);
  EXPECT_FALSE(decode_frame(frame).has_value());
}

TEST(WireDecode, FirstFragmentDecodesWithChecksumUnknown) {
  // Offset 0 + MF: the real TCP header is present, but ip_total spans only
  // this fragment and the TCP checksum spans the whole datagram, so the
  // record must come back with checksum_known = false.
  auto frame = encode_frame(sample_record(100, 64));
  set_be16(frame, kIpFragOff, 0x2000);
  auto decoded = decode_frame(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->tcp.seq, 100u);
  EXPECT_EQ(decoded->tcp.payload_len, 64u);
  EXPECT_FALSE(decoded->checksum_known);
  EXPECT_TRUE(decoded->checksum_ok);
}

TEST(WireDecode, FirstFragmentPayloadCappedAtCapture) {
  // A first fragment whose ip_total claims more than was captured: the
  // length field of a partial datagram is not trusted past the captured
  // slice (an unfragmented frame DOES trust ip_total beyond the capture --
  // that is how header-only snaplens report true payload sizes).
  auto frame = encode_frame(sample_record(100, 64));
  set_be16(frame, kIpFragOff, 0x2000);
  set_be16(frame, kIpTotalOff, 20 + 20 + 64 + 36);  // 36 bytes beyond the capture
  auto decoded = decode_frame(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->tcp.payload_len, 64u);  // capped, not 100
  EXPECT_FALSE(decoded->checksum_known);
}

// ------------------------------------------------------------- TSO frames

TEST(WireDecode, TsoZeroIpTotalFallsBackToCapturedLength) {
  // Linux TSO/GSO writes IP total length 0 on offloaded frames. The old
  // decoder computed tcp_total = 0 < data_off and dropped the record.
  auto frame = encode_frame(sample_record(7, 100));
  set_be16(frame, kIpTotalOff, 0);
  auto decoded = decode_frame(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->tcp.seq, 7u);
  EXPECT_EQ(decoded->tcp.payload_len, 100u);
  // The checksum is typically unfilled on offloaded frames; it must be
  // left unverified rather than reported as corruption.
  EXPECT_FALSE(decoded->checksum_known);
  EXPECT_TRUE(decoded->checksum_ok);
}

TEST(WireDecode, TsoZeroLengthPureAckDecodes) {
  auto frame = encode_frame(sample_record(7, 0));
  set_be16(frame, kIpTotalOff, 0);
  auto decoded = decode_frame(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->tcp.payload_len, 0u);
  EXPECT_FALSE(decoded->checksum_known);
}

// ------------------------------------------------------------- SLL / SLL2

std::vector<std::uint8_t> sll_frame(std::uint32_t payload) {
  auto eth = encode_frame(sample_record(100, payload));
  std::vector<std::uint8_t> sll(16, 0);
  sll[14] = 0x08;  // protocol = IPv4, big-endian at offsets 14-15
  sll[15] = 0x00;
  sll.insert(sll.end(), eth.begin() + kEthernetHeaderLen, eth.end());
  return sll;
}

std::vector<std::uint8_t> sll2_frame(std::uint32_t payload) {
  auto eth = encode_frame(sample_record(100, payload));
  std::vector<std::uint8_t> sll2(20, 0);
  sll2[0] = 0x08;  // protocol = IPv4, big-endian at offset 0
  sll2[1] = 0x00;
  sll2.insert(sll2.end(), eth.begin() + kEthernetHeaderLen, eth.end());
  return sll2;
}

TEST(WireDecode, SllBoundIsTheHeaderLength) {
  // The protocol field lives INSIDE the 16-byte header; a frame holding
  // exactly the header must be rejected by the IP layer's bounds, not by
  // an off-by-two link-layer check (and never read past its end -- the
  // sanitizer leg enforces that).
  std::vector<std::uint8_t> header_only(16, 0);
  header_only[14] = 0x08;
  header_only[15] = 0x00;
  EXPECT_FALSE(decode_frame(kLinktypeLinuxSll, header_only).has_value());

  std::vector<std::uint8_t> short_header(15, 0);
  EXPECT_FALSE(decode_frame(kLinktypeLinuxSll, short_header).has_value());

  auto full = sll_frame(64);
  auto decoded = decode_frame(kLinktypeLinuxSll, full);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->tcp.payload_len, 64u);
}

TEST(WireDecode, Sll2FrameDecodes) {
  EXPECT_TRUE(linktype_supported(kLinktypeLinuxSll2));
  auto frame = sll2_frame(48);
  auto decoded = decode_frame(kLinktypeLinuxSll2, frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->tcp.seq, 100u);
  EXPECT_EQ(decoded->tcp.payload_len, 48u);
  EXPECT_TRUE(decoded->checksum_known);
  EXPECT_TRUE(decoded->checksum_ok);
}

TEST(WireDecode, Sll2ShortHeaderRejected) {
  std::vector<std::uint8_t> short2(19, 0);
  short2[0] = 0x08;
  EXPECT_FALSE(decode_frame(kLinktypeLinuxSll2, short2).has_value());

  std::vector<std::uint8_t> wrong_proto = sll2_frame(8);
  wrong_proto[0] = 0x86;  // IPv6
  wrong_proto[1] = 0xdd;
  EXPECT_FALSE(decode_frame(kLinktypeLinuxSll2, wrong_proto).has_value());
}

// -------------------------------------------------------------- VLAN tags

std::vector<std::uint8_t> with_vlan_tags(std::vector<std::uint8_t> frame, int tags) {
  std::vector<std::uint8_t> tagged(frame.begin(), frame.begin() + 12);
  for (int i = 0; i < tags; ++i) {
    tagged.push_back(0x81);
    tagged.push_back(0x00);
    tagged.push_back(0x00);
    tagged.push_back(static_cast<std::uint8_t>(i + 1));
  }
  tagged.insert(tagged.end(), frame.begin() + 12, frame.end());
  return tagged;
}

TEST(WireDecode, TwoVlanTagsDecode) {
  auto decoded = decode_frame(with_vlan_tags(encode_frame(sample_record(5, 32)), 2));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->tcp.seq, 5u);
}

TEST(WireDecode, ThreeVlanTagsRejected) {
  // After two tags the ethertype is still 0x8100: not IPv4, so the frame
  // is rejected instead of walked further.
  EXPECT_FALSE(
      decode_frame(with_vlan_tags(encode_frame(sample_record(5, 32)), 3)).has_value());
}

// -------------------------------------------- skipped_frames accounting

// Fragments skipped at the decode layer surface through every source's
// skipped_frames counter, same as non-TCP frames always did.
TEST(WireDecode, FragmentCountsAsSkippedFrame) {
  std::vector<std::uint8_t> file;
  auto le16 = [&file](std::uint16_t x) {
    file.push_back(x & 0xff);
    file.push_back((x >> 8) & 0xff);
  };
  auto le32 = [&le16](std::uint32_t x) {
    le16(static_cast<std::uint16_t>(x & 0xffff));
    le16(static_cast<std::uint16_t>(x >> 16));
  };
  le32(0xa1b2c3d4);  // pcap magic
  le16(2);
  le16(4);
  le32(0);
  le32(0);
  le32(65535);
  le32(1);  // Ethernet
  auto add_frame = [&](const std::vector<std::uint8_t>& frame, std::uint32_t sec) {
    le32(sec);
    le32(0);
    le32(static_cast<std::uint32_t>(frame.size()));
    le32(static_cast<std::uint32_t>(frame.size()));
    file.insert(file.end(), frame.begin(), frame.end());
  };
  add_frame(encode_frame(sample_record(1, 64)), 10);
  auto frag = encode_frame(sample_record(65, 64));
  set_be16(frag, kIpFragOff, 0x00b9);
  add_frame(frag, 11);
  add_frame(encode_frame(sample_record(129, 64)), 12);

  std::istringstream in(std::string(file.begin(), file.end()));
  PcapSource source(in);
  std::size_t records = 0;
  while (source.next()) ++records;
  EXPECT_EQ(records, 2u);
  EXPECT_EQ(source.skipped_frames(), 1u);
}

}  // namespace
}  // namespace tcpanaly::trace
