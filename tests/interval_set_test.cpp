// Unit tests for the sequence-interval set used by calibration and
// receiver analysis, including wrap-around behavior.
#include <gtest/gtest.h>

#include "core/interval_set.hpp"

namespace tcpanaly::core {
namespace {

TEST(SeqIntervalSet, EmptyBasics) {
  SeqIntervalSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.covered_bytes(), 0u);
  EXPECT_EQ(set.missing_in(10, 20), 10u);
  EXPECT_FALSE(set.covers(10, 20));
}

TEST(SeqIntervalSet, InsertAndQuery) {
  SeqIntervalSet set;
  set.insert(100, 200);
  EXPECT_EQ(set.covered_bytes(), 100u);
  EXPECT_TRUE(set.covers(100, 200));
  EXPECT_TRUE(set.covers(120, 180));
  EXPECT_FALSE(set.covers(100, 201));
  EXPECT_EQ(set.missing_in(50, 250), 100u);
}

TEST(SeqIntervalSet, MergesAdjacentAndOverlapping) {
  SeqIntervalSet set;
  set.insert(100, 200);
  set.insert(200, 300);  // adjacent
  set.insert(150, 250);  // overlapping
  EXPECT_EQ(set.covered_bytes(), 200u);
  EXPECT_TRUE(set.covers(100, 300));
}

TEST(SeqIntervalSet, DisjointIntervals) {
  SeqIntervalSet set;
  set.insert(100, 200);
  set.insert(400, 500);
  EXPECT_EQ(set.covered_bytes(), 200u);
  EXPECT_EQ(set.missing_in(100, 500), 200u);
  EXPECT_FALSE(set.covers(150, 450));
}

TEST(SeqIntervalSet, InsertSpanningManyIntervals) {
  SeqIntervalSet set;
  set.insert(10, 20);
  set.insert(30, 40);
  set.insert(50, 60);
  set.insert(15, 55);
  EXPECT_TRUE(set.covers(10, 60));
  EXPECT_EQ(set.covered_bytes(), 50u);
}

TEST(SeqIntervalSet, EmptyInsertIgnored) {
  SeqIntervalSet set;
  set.insert(10, 10);
  EXPECT_TRUE(set.empty());
}

TEST(SeqIntervalSet, WrapAroundSequenceSpace) {
  SeqIntervalSet set;
  const trace::SeqNum near_top = 0xfffffff0u;
  set.insert(near_top, near_top + 0x20);  // wraps past zero
  EXPECT_EQ(set.covered_bytes(), 0x20u);
  EXPECT_TRUE(set.covers(near_top + 0x08, near_top + 0x18));
  EXPECT_EQ(set.max_end(), near_top + 0x20);
}

TEST(SeqIntervalSet, EraseSplitsInterval) {
  SeqIntervalSet set;
  set.insert(100, 200);
  set.erase(140, 160);
  EXPECT_EQ(set.covered_bytes(), 80u);
  EXPECT_TRUE(set.covers(100, 140));
  EXPECT_TRUE(set.covers(160, 200));
  EXPECT_FALSE(set.covers(139, 141));
}

TEST(SeqIntervalSet, EraseEdgesAndWholeIntervals) {
  SeqIntervalSet set;
  set.insert(100, 200);
  set.insert(300, 400);
  set.erase(150, 350);
  EXPECT_TRUE(set.covers(100, 150));
  EXPECT_TRUE(set.covers(350, 400));
  EXPECT_EQ(set.covered_bytes(), 100u);
  set.erase(0, 1000);
  EXPECT_EQ(set.covered_bytes(), 0u);
}

TEST(SeqIntervalSet, ContiguousEnd) {
  SeqIntervalSet set;
  set.insert(100, 200);
  set.insert(200, 250);
  set.insert(300, 400);
  EXPECT_EQ(set.contiguous_end(100), 250u);
  EXPECT_EQ(set.contiguous_end(150), 250u);
  EXPECT_EQ(set.contiguous_end(250), 250u);  // not covered: stays put
  EXPECT_EQ(set.contiguous_end(260), 260u);
  EXPECT_EQ(set.contiguous_end(300), 400u);
}

TEST(SeqIntervalSet, ContiguousEndAfterHoleFill) {
  SeqIntervalSet set;
  set.insert(100, 150);
  set.insert(200, 250);
  EXPECT_EQ(set.contiguous_end(100), 150u);
  set.insert(150, 200);  // fill the hole
  EXPECT_EQ(set.contiguous_end(100), 250u);
}

TEST(SeqIntervalSet, MissingInPartialOverlap) {
  SeqIntervalSet set;
  set.insert(100, 200);
  EXPECT_EQ(set.missing_in(150, 250), 50u);
  EXPECT_EQ(set.missing_in(50, 150), 50u);
  EXPECT_EQ(set.missing_in(200, 300), 100u);
  EXPECT_EQ(set.missing_in(150, 150), 0u);
}

}  // namespace
}  // namespace tcpanaly::core
