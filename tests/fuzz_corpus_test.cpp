// Replays the checked-in fuzz regression corpus (tests/fuzz_corpus/)
// through all three parsers under both limit profiles. Every file must
// either parse or be rejected with std::runtime_error -- never anything
// else. The three named regress_* files additionally pin down the
// specific historical parser bugs they reproduce.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>

#include "fuzz/fuzzer.hpp"
#include "trace/pcap_io.hpp"
#include "util/parse_limits.hpp"

namespace tcpanaly::fuzz {
namespace {

const std::filesystem::path kCorpusDir = TCPANALY_FUZZ_CORPUS_DIR;

Bytes read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  return Bytes((std::istreambuf_iterator<char>(in)),
               std::istreambuf_iterator<char>());
}

TEST(FuzzCorpus, EveryFileParsesOrRejectsCleanly) {
  ASSERT_TRUE(std::filesystem::is_directory(kCorpusDir)) << kCorpusDir;
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(kCorpusDir)) {
    if (!entry.is_regular_file()) continue;
    const Bytes data = read_file(entry.path());
    ++files;
    for (const InputFormat fmt :
         {InputFormat::kPcap, InputFormat::kPcapng, InputFormat::kJson}) {
      for (const auto& limits :
           {util::ParseLimits{}, util::ParseLimits::fuzzing()}) {
        const ParseCheck check = check_parse(fmt, data, limits);
        EXPECT_NE(check.outcome, ParseOutcome::kContractViolation)
            << entry.path() << " via " << to_string(fmt) << ": " << check.error;
      }
    }
  }
  // The three named reproducers plus at least one mutant per format.
  EXPECT_GE(files, 6u);
}

TEST(FuzzCorpus, CaplenLieReproducerStillRejected) {
  const Bytes data = read_file(kCorpusDir / "regress_pcap_caplen_lie.pcap");
  ASSERT_FALSE(data.empty());
  const ParseCheck check = check_parse(InputFormat::kPcap, data, util::ParseLimits{});
  EXPECT_EQ(check.outcome, ParseOutcome::kRejected);
  EXPECT_NE(check.error.find("exceeds record-size limit"), std::string::npos)
      << check.error;
}

TEST(FuzzCorpus, EpbWrapReproducerStillRejected) {
  const Bytes data = read_file(kCorpusDir / "regress_pcapng_epb_wrap.pcapng");
  ASSERT_FALSE(data.empty());
  const ParseCheck check =
      check_parse(InputFormat::kPcapng, data, util::ParseLimits{});
  EXPECT_EQ(check.outcome, ParseOutcome::kRejected);
}

TEST(FuzzCorpus, Tsresol20ReproducerAcceptedWithFallback) {
  const Bytes data = read_file(kCorpusDir / "regress_pcapng_tsresol20.pcapng");
  ASSERT_FALSE(data.empty());
  // The file itself is structurally valid; only its if_tsresol is absurd.
  // The fixed parser accepts it under the microsecond fallback (its
  // frames are undecodable padding, so the trace is empty but the parse
  // must not throw).
  std::istringstream in(std::string(data.begin(), data.end()));
  trace::PcapReadResult result;
  ASSERT_NO_THROW(result = trace::read_pcapng(in));
  EXPECT_EQ(result.skipped_frames, 2u);
}

}  // namespace
}  // namespace tcpanaly::fuzz
