// Unit tests for the simulator substrate: event loop ordering and
// cancellation, measurement clocks, path queueing/impairments, and the
// packet-filter tap's error models.
#include <gtest/gtest.h>

#include <vector>

#include "netsim/clock.hpp"
#include "netsim/event_loop.hpp"
#include "netsim/path.hpp"
#include "netsim/tap.hpp"

namespace tcpanaly::sim {
namespace {

// ----------------------------------------------------------- event loop

TEST(EventLoop, FiresInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(TimePoint(300), [&] { order.push_back(3); });
  loop.schedule_at(TimePoint(100), [&] { order.push_back(1); });
  loop.schedule_at(TimePoint(200), [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), TimePoint(300));
}

TEST(EventLoop, FifoAmongEqualTimes) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    loop.schedule_at(TimePoint(50), [&order, i] { order.push_back(i); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  int fired = 0;
  const EventId id = loop.schedule_at(TimePoint(10), [&] { ++fired; });
  loop.schedule_at(TimePoint(20), [&] { ++fired; });
  EXPECT_TRUE(loop.cancel(id));
  EXPECT_FALSE(loop.cancel(id));  // double cancel
  loop.run();
  EXPECT_EQ(fired, 1);
}

TEST(EventLoop, PastSchedulesClampToNow) {
  EventLoop loop;
  loop.schedule_at(TimePoint(100), [] {});
  loop.run();
  TimePoint when;
  loop.schedule_at(TimePoint(10), [&] { when = loop.now(); });
  loop.run();
  EXPECT_EQ(when, TimePoint(100));
}

TEST(EventLoop, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_at(TimePoint(100), [&] { ++fired; });
  loop.schedule_at(TimePoint(300), [&] { ++fired; });
  EXPECT_EQ(loop.run_until(TimePoint(200)), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.now(), TimePoint(200));
  EXPECT_EQ(loop.pending(), 1u);
  loop.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventLoop, EventsCanScheduleEvents) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) loop.schedule_after(Duration::micros(10), recurse);
  };
  loop.schedule_at(TimePoint(0), recurse);
  loop.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(loop.now(), TimePoint(40));
}

TEST(EventLoop, RunRespectsLimit) {
  EventLoop loop;
  std::function<void()> forever = [&] { loop.schedule_after(Duration::micros(1), forever); };
  loop.schedule_at(TimePoint(0), forever);
  EXPECT_EQ(loop.run(100), 100u);
}

// ---------------------------------------------------------------- clock

TEST(MeasurementClock, IdentityByDefault) {
  MeasurementClock clock;
  EXPECT_EQ(clock.read(TimePoint(123456)), TimePoint(123456));
}

TEST(MeasurementClock, OffsetAndSkew) {
  MeasurementClock clock;
  clock.set_offset(util::Duration::millis(5));
  clock.set_skew_ppm(100.0);  // +100 us per second
  EXPECT_EQ(clock.read(TimePoint(0)), TimePoint(5000));
  EXPECT_EQ(clock.read(TimePoint(1'000'000)), TimePoint(1'005'100));
}

TEST(MeasurementClock, BackwardStepCausesTimeTravel) {
  MeasurementClock clock;
  clock.add_step(TimePoint(500), util::Duration::micros(-200));
  const TimePoint before = clock.read(TimePoint(499));
  const TimePoint after = clock.read(TimePoint(501));
  EXPECT_GT(before, after);  // the clock jumped backwards
  EXPECT_EQ(after, TimePoint(301));
}

TEST(MeasurementClock, StepsAccumulate) {
  MeasurementClock clock;
  clock.add_step(TimePoint(100), util::Duration::micros(10));
  clock.add_step(TimePoint(200), util::Duration::micros(20));
  EXPECT_EQ(clock.read(TimePoint(150)), TimePoint(160));
  EXPECT_EQ(clock.read(TimePoint(250)), TimePoint(280));
}

// ----------------------------------------------------------------- path

SimPacket packet(std::uint32_t len, std::uint64_t id = 1) {
  SimPacket pkt;
  pkt.src = {0x0a000001, 1};
  pkt.dst = {0x0a000002, 2};
  pkt.tcp.payload_len = len;
  pkt.id = id;
  return pkt;
}

TEST(Path, DeliversAfterSerializationAndPropagation) {
  EventLoop loop;
  PathConfig cfg;
  cfg.rate_bytes_per_sec = 54'000.0;  // 1 ms per 54-byte header-only frame
  cfg.prop_delay = Duration::millis(10);
  Path path(loop, cfg, util::Rng(1));
  TimePoint arrival;
  path.set_deliver([&](const SimPacket&, TimePoint at) { arrival = at; });
  path.send(packet(0));  // 54-byte wire frame
  loop.run();
  EXPECT_EQ(arrival, TimePoint(11'000));
  EXPECT_EQ(path.delivered_count(), 1u);
}

TEST(Path, BackToBackFramesQueueOnLink) {
  EventLoop loop;
  PathConfig cfg;
  cfg.rate_bytes_per_sec = 54'000.0;
  cfg.prop_delay = Duration::zero();
  Path path(loop, cfg, util::Rng(1));
  std::vector<TimePoint> arrivals;
  path.set_deliver([&](const SimPacket&, TimePoint at) { arrivals.push_back(at); });
  path.send(packet(0, 1));
  path.send(packet(0, 2));
  loop.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[1] - arrivals[0], Duration::millis(1));
}

TEST(Path, TransmitObserverSeesHandoffAndDeparture) {
  EventLoop loop;
  PathConfig cfg;
  cfg.rate_bytes_per_sec = 54'000.0;
  Path path(loop, cfg, util::Rng(1));
  std::vector<TransmitEvent> events;
  path.set_transmit_observer([&](const TransmitEvent& ev) { events.push_back(ev); });
  path.send(packet(0, 1));
  path.send(packet(0, 2));
  loop.run();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].handoff, TimePoint(0));
  EXPECT_EQ(events[0].wire_depart, TimePoint(1000));
  EXPECT_EQ(events[1].handoff, TimePoint(0));
  EXPECT_EQ(events[1].wire_depart, TimePoint(2000));
}

TEST(Path, ForcedDropsHitExactPackets) {
  EventLoop loop;
  PathConfig cfg;
  cfg.rate_bytes_per_sec = 0;
  cfg.drop_nth = {1};
  Path path(loop, cfg, util::Rng(1));
  std::vector<std::uint64_t> ids;
  path.set_deliver([&](const SimPacket& pkt, TimePoint) { ids.push_back(pkt.id); });
  for (std::uint64_t i = 0; i < 3; ++i) path.send(packet(10, 100 + i));
  loop.run();
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{100, 102}));
  EXPECT_EQ(path.random_drops(), 1u);
}

TEST(Path, ForcedCorruptionMarksPacket) {
  EventLoop loop;
  PathConfig cfg;
  cfg.corrupt_nth = {0};
  Path path(loop, cfg, util::Rng(1));
  std::vector<bool> corrupt;
  path.set_deliver([&](const SimPacket& pkt, TimePoint) { corrupt.push_back(pkt.corrupted); });
  path.send(packet(10, 1));
  path.send(packet(10, 2));
  loop.run();
  EXPECT_EQ(corrupt, (std::vector<bool>{true, false}));
  EXPECT_EQ(path.corrupted_count(), 1u);
}

TEST(Path, RandomLossApproximatesRate) {
  EventLoop loop;
  PathConfig cfg;
  cfg.rate_bytes_per_sec = 0;
  cfg.loss_prob = 0.2;
  Path path(loop, cfg, util::Rng(99));
  int delivered = 0;
  path.set_deliver([&](const SimPacket&, TimePoint) { ++delivered; });
  for (int i = 0; i < 2000; ++i) path.send(packet(10));
  loop.run();
  EXPECT_NEAR(delivered / 2000.0, 0.8, 0.03);
}

TEST(Path, DuplicationDeliversTwice) {
  EventLoop loop;
  PathConfig cfg;
  cfg.dup_prob = 1.0;
  Path path(loop, cfg, util::Rng(1));
  int delivered = 0;
  path.set_deliver([&](const SimPacket&, TimePoint) { ++delivered; });
  path.send(packet(10));
  loop.run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(path.duplicated_count(), 1u);
}

TEST(Path, BottleneckTailDropsWhenQueueFull) {
  EventLoop loop;
  PathConfig cfg;
  cfg.rate_bytes_per_sec = 0;  // hand-off straight to the bottleneck
  cfg.bottleneck_rate_bytes_per_sec = 54'000.0;
  cfg.bottleneck_queue_limit = 3;
  cfg.prop_delay = Duration::zero();
  Path path(loop, cfg, util::Rng(1));
  int delivered = 0;
  path.set_deliver([&](const SimPacket&, TimePoint) { ++delivered; });
  for (int i = 0; i < 10; ++i) path.send(packet(0));
  loop.run();
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(path.queue_drops(), 7u);
}

TEST(Path, BottleneckDrainsOverTime) {
  EventLoop loop;
  PathConfig cfg;
  cfg.rate_bytes_per_sec = 0;
  cfg.bottleneck_rate_bytes_per_sec = 54'000.0;
  cfg.bottleneck_queue_limit = 3;
  cfg.prop_delay = Duration::zero();
  Path path(loop, cfg, util::Rng(1));
  int delivered = 0;
  path.set_deliver([&](const SimPacket&, TimePoint) { ++delivered; });
  path.send(packet(0));
  path.send(packet(0));
  loop.run();
  // Queue drained; further sends are accepted again.
  loop.schedule_at(loop.now() + Duration::millis(10), [&] { path.send(packet(0)); });
  loop.run();
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(path.queue_drops(), 0u);
}

// ----------------------------------------------------------------- tap

trace::Trace make_target() {
  trace::Trace tr;
  tr.meta().local = {0x0a000001, 1};
  tr.meta().remote = {0x0a000002, 2};
  return tr;
}

TEST(FilterTap, RecordsOutboundAtHandoff) {
  EventLoop loop;
  trace::Trace out = make_target();
  FilterTap tap(loop, {}, util::Rng(1), &out);
  TransmitEvent ev;
  ev.packet = packet(100);
  ev.handoff = TimePoint(1000);
  ev.wire_depart = TimePoint(3000);
  tap.observe_transmit(ev);
  loop.run();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].timestamp, TimePoint(1000));  // BPF hooks before the queue
  EXPECT_EQ(out[0].truth_wire_time, TimePoint(3000));
}

TEST(FilterTap, IrixModeRecordsTwice) {
  EventLoop loop;
  trace::Trace out = make_target();
  FilterConfig cfg;
  cfg.irix_double_copy = true;
  cfg.irix_os_rate_bytes_per_sec = 0;  // first copy exactly at hand-off
  FilterTap tap(loop, cfg, util::Rng(1), &out);
  TransmitEvent ev;
  ev.packet = packet(100);
  ev.handoff = TimePoint(1000);
  ev.wire_depart = TimePoint(3000);
  tap.observe_transmit(ev);
  loop.run();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].timestamp, TimePoint(1000));
  EXPECT_FALSE(out[0].truth_filter_duplicate);
  EXPECT_EQ(out[1].timestamp, TimePoint(3000));
  EXPECT_TRUE(out[1].truth_filter_duplicate);
  EXPECT_EQ(tap.duplicates_recorded(), 1u);
}

TEST(FilterTap, DropNthSuppressesRecord) {
  EventLoop loop;
  trace::Trace out = make_target();
  FilterConfig cfg;
  cfg.drop_nth = {0, 2};
  FilterTap tap(loop, cfg, util::Rng(1), &out);
  for (std::uint64_t i = 0; i < 4; ++i) tap.observe_arrival(packet(10, i), TimePoint(i * 10));
  loop.run();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(tap.filter_drops(), 2u);
}

TEST(FilterTap, ResequencingDelaysRecordAndTimestamp) {
  EventLoop loop;
  trace::Trace out = make_target();
  FilterConfig cfg;
  cfg.reseq_prob = 1.0;
  cfg.reseq_delay = Duration::micros(500);
  FilterTap tap(loop, cfg, util::Rng(1), &out);
  tap.observe_arrival(packet(10, 1), TimePoint(1000));
  // An outbound record in between: the delayed inbound must sort after it.
  TransmitEvent ev;
  ev.packet = packet(20, 2);
  ev.handoff = TimePoint(1200);
  ev.wire_depart = TimePoint(1200);
  tap.observe_transmit(ev);
  loop.run();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].tcp.payload_len, 20u);  // outbound recorded first
  EXPECT_EQ(out[1].tcp.payload_len, 10u);  // inbound record displaced
  EXPECT_EQ(out[1].timestamp, TimePoint(1500));
  EXPECT_EQ(tap.resequenced(), 1u);
}

TEST(FilterTap, ClockShapesTimestamps) {
  EventLoop loop;
  trace::Trace out = make_target();
  FilterConfig cfg;
  cfg.clock.set_offset(Duration::millis(2));
  FilterTap tap(loop, cfg, util::Rng(1), &out);
  tap.observe_arrival(packet(10), TimePoint(1000));
  loop.run();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].timestamp, TimePoint(3000));
  EXPECT_EQ(out[0].truth_wire_time, TimePoint(1000));  // truth unaffected
}

TEST(FilterTap, HeaderSnapLosesChecksums) {
  EventLoop loop;
  trace::Trace out = make_target();
  FilterConfig cfg;
  cfg.snap_headers_only = true;
  FilterTap tap(loop, cfg, util::Rng(1), &out);
  SimPacket pkt = packet(10);
  pkt.corrupted = true;
  tap.observe_arrival(pkt, TimePoint(1));
  loop.run();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(out[0].checksum_known);
  EXPECT_TRUE(out[0].truth_corrupted);
}

}  // namespace
}  // namespace tcpanaly::sim

namespace tcpanaly::sim {
namespace {

TEST(CrossTraffic, PerturbsQueueingDelay) {
  // Mean delivery time of 200 under-capacity probes, with and without a
  // Poisson competitor at the bottleneck.
  auto mean_delivery = [](double intensity) {
    EventLoop loop;
    PathConfig cfg;
    cfg.rate_bytes_per_sec = 0;
    cfg.bottleneck_rate_bytes_per_sec = 60'000.0;
    cfg.bottleneck_queue_limit = 40;
    cfg.prop_delay = Duration::zero();
    cfg.cross_traffic_intensity = intensity;
    Path path(loop, cfg, util::Rng(7));
    double sum = 0.0;
    int n = 0;
    path.set_deliver([&](const SimPacket&, TimePoint at) {
      sum += at.to_seconds();
      ++n;
    });
    for (int i = 0; i < 200; ++i) {
      SimPacket pkt;
      pkt.src = {1, 1};
      pkt.dst = {2, 2};
      pkt.tcp.payload_len = 512;
      loop.schedule_at(TimePoint(50'000LL * i), [&path, pkt] { path.send(pkt); });
    }
    loop.run();
    EXPECT_EQ(n, 200);
    return sum / (n ? n : 1);
  };
  EXPECT_GT(mean_delivery(0.6), mean_delivery(0.0));
}

TEST(CrossTraffic, CanCrowdOutOfSmallQueue) {
  EventLoop loop;
  PathConfig cfg;
  cfg.rate_bytes_per_sec = 0;
  cfg.bottleneck_rate_bytes_per_sec = 20'000.0;
  cfg.bottleneck_queue_limit = 3;
  cfg.prop_delay = Duration::zero();
  cfg.cross_traffic_intensity = 0.9;
  Path path(loop, cfg, util::Rng(3));
  int delivered = 0;
  path.set_deliver([&](const SimPacket&, TimePoint) { ++delivered; });
  for (int i = 0; i < 100; ++i) {
    SimPacket pkt;
    pkt.src = {1, 1};
    pkt.dst = {2, 2};
    pkt.tcp.payload_len = 512;
    loop.schedule_at(TimePoint(30'000LL * i), [&path, pkt] { path.send(pkt); });
  }
  loop.run();
  EXPECT_LT(delivered, 100);
  EXPECT_GT(path.queue_drops(), 0u);
}

}  // namespace
}  // namespace tcpanaly::sim

namespace tcpanaly::sim {
namespace {

TEST(FilterTap, DropReportModes) {
  // Paper 3.1.1: the OS drop counter may be accurate, absent, stale, or a
  // flat lie -- which is why tcpanaly infers drops from self-consistency.
  EventLoop loop;
  trace::Trace out;
  out.meta().local = {1, 1};
  out.meta().remote = {2, 2};
  FilterConfig cfg;
  cfg.drop_nth = {0, 1, 2};
  auto run_with = [&](FilterConfig::DropReportMode mode) {
    cfg.drop_report_mode = mode;
    FilterTap tap(loop, cfg, util::Rng(1), &out);
    for (std::uint64_t i = 0; i < 5; ++i) {
      SimPacket pkt;
      pkt.src = {2, 2};
      pkt.dst = {1, 1};
      pkt.tcp.payload_len = 10;
      tap.observe_arrival(pkt, TimePoint(10 * i));
    }
    loop.run();  // drain record events while the tap is alive
    return tap.reported_drops();
  };
  EXPECT_EQ(run_with(FilterConfig::DropReportMode::kAccurate), 3u);
  EXPECT_EQ(run_with(FilterConfig::DropReportMode::kNotReported), std::nullopt);
  EXPECT_EQ(run_with(FilterConfig::DropReportMode::kStuck), 62u);
  EXPECT_EQ(run_with(FilterConfig::DropReportMode::kAlwaysZero), 0u);
}

}  // namespace
}  // namespace tcpanaly::sim
