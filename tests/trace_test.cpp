// Unit tests for the trace layer: sequence arithmetic, packet model,
// trace container utilities, checksums, wire codec, pcap round trips,
// sequence-plot extraction.
#include <gtest/gtest.h>

#include <fstream>
#include <optional>
#include <span>
#include <sstream>

#include "trace/checksum.hpp"
#include "trace/pcap_io.hpp"
#include "trace/seq.hpp"
#include "trace/trace.hpp"
#include "trace/wire.hpp"
#include "util/rng.hpp"

namespace tcpanaly::trace {
namespace {

// ----------------------------------------------------------------- seq

TEST(Seq, OrderingNearWrap) {
  const SeqNum hi = 0xfffffff0u;
  const SeqNum lo = 0x00000010u;  // logically AFTER hi (wrapped)
  EXPECT_TRUE(seq_lt(hi, lo));
  EXPECT_TRUE(seq_gt(lo, hi));
  EXPECT_EQ(seq_diff(lo, hi), 0x20);
  EXPECT_EQ(seq_diff(hi, lo), -0x20);
}

TEST(Seq, ReflexiveComparisons) {
  EXPECT_TRUE(seq_le(5u, 5u));
  EXPECT_TRUE(seq_ge(5u, 5u));
  EXPECT_FALSE(seq_lt(5u, 5u));
}

TEST(Seq, MinMaxRespectWrap) {
  const SeqNum a = 0xffffff00u, b = 0x100u;
  EXPECT_EQ(seq_max(a, b), b);
  EXPECT_EQ(seq_min(a, b), a);
}

TEST(Seq, WindowMembership) {
  EXPECT_TRUE(seq_in_window(5u, 5u, 10u));
  EXPECT_FALSE(seq_in_window(10u, 5u, 10u));
  EXPECT_TRUE(seq_in_window(0x4u, 0xfffffffau, 0x10u));  // wrapped window
}

// -------------------------------------------------------------- packet

TEST(TcpSegment, SeqLenCountsPhantomOctets) {
  TcpSegment seg;
  seg.seq = 100;
  seg.payload_len = 10;
  EXPECT_EQ(seg.seq_len(), 10u);
  seg.flags.syn = true;
  EXPECT_EQ(seg.seq_len(), 11u);
  seg.flags.fin = true;
  EXPECT_EQ(seg.seq_len(), 12u);
  EXPECT_EQ(seg.seq_end(), 112u);
}

TEST(TcpSegment, PureAckDetection) {
  TcpSegment seg;
  seg.flags.ack = true;
  EXPECT_TRUE(seg.is_pure_ack());
  seg.payload_len = 1;
  EXPECT_FALSE(seg.is_pure_ack());
  seg.payload_len = 0;
  seg.flags.fin = true;
  EXPECT_FALSE(seg.is_pure_ack());
}

TEST(Endpoint, ToStringDottedQuad) {
  Endpoint ep{0x0a000001, 4000};
  EXPECT_EQ(ep.to_string(), "10.0.0.1:4000");
}

// --------------------------------------------------------------- trace

Trace two_host_trace() {
  Trace tr;
  tr.meta().local = {0x0a000001, 1000};
  tr.meta().remote = {0x0a000002, 2000};
  tr.meta().role = LocalRole::kSender;
  return tr;
}

PacketRecord data_rec(SeqNum seq, std::uint32_t len, std::int64_t at_us, bool from_local) {
  PacketRecord rec;
  rec.timestamp = util::TimePoint(at_us);
  rec.src = from_local ? Endpoint{0x0a000001, 1000} : Endpoint{0x0a000002, 2000};
  rec.dst = from_local ? Endpoint{0x0a000002, 2000} : Endpoint{0x0a000001, 1000};
  rec.tcp.seq = seq;
  rec.tcp.payload_len = len;
  rec.tcp.flags.ack = true;
  return rec;
}

TEST(Trace, DirectionBySource) {
  Trace tr = two_host_trace();
  tr.push_back(data_rec(1, 10, 0, true));
  tr.push_back(data_rec(1, 0, 1, false));
  EXPECT_TRUE(tr.is_from_local(tr[0]));
  EXPECT_FALSE(tr.is_from_local(tr[1]));
  EXPECT_EQ(tr.count(Direction::kFromLocal), 1u);
  EXPECT_EQ(tr.count(Direction::kToLocal), 1u);
}

TEST(Trace, UniquePayloadMergesOverlapsAndRetransmissions) {
  Trace tr = two_host_trace();
  tr.push_back(data_rec(100, 50, 0, true));
  tr.push_back(data_rec(150, 50, 1, true));
  tr.push_back(data_rec(100, 50, 2, true));  // retransmission
  tr.push_back(data_rec(125, 100, 3, true)); // overlapping
  tr.push_back(data_rec(300, 10, 4, true));  // disjoint
  EXPECT_EQ(tr.unique_payload_bytes(Direction::kFromLocal), 125u + 10u);
}

TEST(Trace, StableSortPreservesTieOrder) {
  Trace tr = two_host_trace();
  auto a = data_rec(1, 1, 5, true);
  auto b = data_rec(2, 1, 5, true);
  auto c = data_rec(3, 1, 4, true);
  tr.push_back(a);
  tr.push_back(b);
  tr.push_back(c);
  tr.stable_sort_by_timestamp();
  EXPECT_EQ(tr[0].tcp.seq, 3u);
  EXPECT_EQ(tr[1].tcp.seq, 1u);
  EXPECT_EQ(tr[2].tcp.seq, 2u);
}

TEST(SeqPlot, MarksRetransmissions) {
  Trace tr = two_host_trace();
  tr.push_back(data_rec(100, 50, 0, true));
  tr.push_back(data_rec(150, 50, 1, true));
  tr.push_back(data_rec(100, 50, 2, true));  // retransmission
  auto ack = data_rec(0, 0, 3, false);
  ack.tcp.ack = 200;
  tr.push_back(ack);
  auto pts = extract_seqplot(tr);
  ASSERT_EQ(pts.size(), 4u);
  EXPECT_FALSE(pts[0].is_retransmit);
  EXPECT_FALSE(pts[1].is_retransmit);
  EXPECT_TRUE(pts[2].is_retransmit);
  EXPECT_FALSE(pts[3].is_data);
}

TEST(SeqPlot, RenderIncludesLegend) {
  Trace tr = two_host_trace();
  tr.push_back(data_rec(100, 50, 0, true));
  tr.push_back(data_rec(150, 50, 1000, true));
  const std::string plot = render_seqplot(extract_seqplot(tr), 20, 5);
  EXPECT_NE(plot.find("#=data"), std::string::npos);
}

TEST(SeqPlot, EmptyPlotSafe) {
  EXPECT_EQ(render_seqplot({}, 10, 5), "(empty plot)\n");
}

// ------------------------------------------------------------ checksum

TEST(Checksum, Rfc1071Example) {
  // RFC 1071's canonical example bytes.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(checksum_accumulate(data), 0xddf2);
  EXPECT_EQ(internet_checksum(data), static_cast<std::uint16_t>(~0xddf2 & 0xffff));
}

TEST(Checksum, OddLengthPadsWithZero) {
  const std::uint8_t data[] = {0x12, 0x34, 0x56};
  EXPECT_EQ(checksum_accumulate(data), 0x1234 + 0x5600);
}

TEST(Checksum, TcpChecksumVerifiesOwnOutput) {
  std::vector<std::uint8_t> seg(40, 0);
  seg[0] = 0x12;  // arbitrary content
  seg[13] = 0x10;
  const std::uint16_t sum = tcp_checksum(0x0a000001, 0x0a000002, seg);
  seg[16] = static_cast<std::uint8_t>(sum >> 8);
  seg[17] = static_cast<std::uint8_t>(sum & 0xff);
  EXPECT_TRUE(tcp_checksum_ok(0x0a000001, 0x0a000002, seg));
  seg[20] ^= 0x01;
  EXPECT_FALSE(tcp_checksum_ok(0x0a000001, 0x0a000002, seg));
}

// ---------------------------------------------------------------- wire

PacketRecord sample_record() {
  PacketRecord rec;
  rec.timestamp = util::TimePoint(123456);
  rec.src = {0xc0a80101, 12345};
  rec.dst = {0x0a000002, 80};
  rec.tcp.seq = 0xdeadbeef;
  rec.tcp.ack = 0x01020304;
  rec.tcp.flags.ack = true;
  rec.tcp.flags.psh = true;
  rec.tcp.window = 8760;
  rec.tcp.payload_len = 100;
  return rec;
}

TEST(Wire, EncodeDecodeRoundTrip) {
  const PacketRecord rec = sample_record();
  auto frame = encode_frame(rec);
  EXPECT_EQ(frame.size(), kEthernetHeaderLen + kIpv4HeaderLen + kTcpBaseHeaderLen + 100);
  auto decoded = decode_frame(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->src, rec.src);
  EXPECT_EQ(decoded->dst, rec.dst);
  EXPECT_EQ(decoded->tcp, rec.tcp);
  EXPECT_TRUE(decoded->checksum_known);
  EXPECT_TRUE(decoded->checksum_ok);
}

TEST(Wire, MssOptionRoundTrip) {
  PacketRecord rec = sample_record();
  rec.tcp.payload_len = 0;
  rec.tcp.flags = {};
  rec.tcp.flags.syn = true;
  rec.tcp.mss_option = 1460;
  auto decoded = decode_frame(encode_frame(rec));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(decoded->tcp.mss_option.has_value());
  EXPECT_EQ(*decoded->tcp.mss_option, 1460);
  EXPECT_TRUE(decoded->tcp.flags.syn);
}

TEST(Wire, AllFlagsRoundTrip) {
  PacketRecord rec = sample_record();
  rec.tcp.payload_len = 0;
  rec.tcp.flags.syn = true;
  rec.tcp.flags.fin = true;
  rec.tcp.flags.rst = true;
  auto decoded = decode_frame(encode_frame(rec));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->tcp.flags, rec.tcp.flags);
}

TEST(Wire, CorruptionFlagYieldsBadChecksum) {
  PacketRecord rec = sample_record();
  EncodeOptions opts;
  opts.corrupt_tcp_payload = true;
  auto decoded = decode_frame(encode_frame(rec, opts));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->checksum_known);
  EXPECT_FALSE(decoded->checksum_ok);
}

TEST(Wire, RejectsNonIpv4AndShortFrames) {
  std::vector<std::uint8_t> junk(10, 0);
  EXPECT_FALSE(decode_frame(junk).has_value());
  auto frame = encode_frame(sample_record());
  frame[12] = 0x08;
  frame[13] = 0x06;  // ARP ethertype
  EXPECT_FALSE(decode_frame(frame).has_value());
}

// ---------------------------------------------------------------- pcap

Trace pcap_trace() {
  Trace tr = two_host_trace();
  for (int i = 0; i < 5; ++i) {
    auto rec = data_rec(100 + 50 * i, 50, 1000 * i, true);
    tr.push_back(rec);
    auto ack = data_rec(1, 0, 1000 * i + 500, false);
    ack.tcp.ack = 150 + 50 * i;
    ack.tcp.window = 4096;
    tr.push_back(ack);
  }
  return tr;
}

TEST(Pcap, RoundTripPreservesRecords) {
  const Trace tr = pcap_trace();
  std::stringstream buf;
  write_pcap(buf, tr);
  auto loaded = read_pcap(buf, /*local_is_sender=*/true);
  ASSERT_EQ(loaded.trace.size(), tr.size());
  EXPECT_EQ(loaded.skipped_frames, 0u);
  for (std::size_t i = 0; i < tr.size(); ++i) {
    EXPECT_EQ(loaded.trace[i].timestamp, tr[i].timestamp) << i;
    EXPECT_EQ(loaded.trace[i].tcp, tr[i].tcp) << i;
    EXPECT_EQ(loaded.trace[i].src, tr[i].src) << i;
  }
}

TEST(Pcap, InfersEndpointsFromPayloadDirection) {
  const Trace tr = pcap_trace();
  std::stringstream buf;
  write_pcap(buf, tr);
  auto loaded = read_pcap(buf, /*local_is_sender=*/true);
  EXPECT_EQ(loaded.trace.meta().local, tr.meta().local);
  EXPECT_EQ(loaded.trace.meta().role, LocalRole::kSender);

  std::stringstream buf2;
  write_pcap(buf2, tr);
  auto as_receiver = read_pcap(buf2, /*local_is_sender=*/false);
  EXPECT_EQ(as_receiver.trace.meta().local, tr.meta().remote);
  EXPECT_EQ(as_receiver.trace.meta().role, LocalRole::kReceiver);
}

TEST(Pcap, CorruptedRecordsRoundTripAsBadChecksums) {
  Trace tr = pcap_trace();
  tr[2].truth_corrupted = true;
  std::stringstream buf;
  write_pcap(buf, tr);
  auto loaded = read_pcap(buf);
  ASSERT_EQ(loaded.trace.size(), tr.size());
  EXPECT_TRUE(loaded.trace[2].checksum_known);
  EXPECT_FALSE(loaded.trace[2].checksum_ok);
  EXPECT_TRUE(loaded.trace[3].checksum_ok);
}

TEST(Pcap, HeaderOnlySnaplenLosesChecksumKnowledge) {
  const Trace tr = pcap_trace();
  std::stringstream buf;
  PcapWriteOptions opts;
  opts.snaplen = 68;  // the classic tcpdump default
  write_pcap(buf, tr, opts);
  auto loaded = read_pcap(buf);
  ASSERT_EQ(loaded.trace.size(), tr.size());
  // Data packets were truncated: corruption can no longer be verified.
  EXPECT_FALSE(loaded.trace[0].checksum_known);
  // Pure acks fit within the snaplen and keep their checksums.
  EXPECT_TRUE(loaded.trace[1].checksum_known);
}

TEST(Pcap, RejectsGarbage) {
  std::stringstream buf("not a pcap file at all");
  EXPECT_THROW(read_pcap(buf), std::runtime_error);
  std::stringstream empty;
  EXPECT_THROW(read_pcap(empty), std::runtime_error);
}

TEST(Pcap, FileHelpersWork) {
  const Trace tr = pcap_trace();
  const std::string path = ::testing::TempDir() + "/tcpanaly_test.pcap";
  write_pcap_file(path, tr);
  auto loaded = read_pcap_file(path);
  EXPECT_EQ(loaded.trace.size(), tr.size());
  EXPECT_THROW(read_pcap_file(path + ".missing"), std::runtime_error);
}

}  // namespace
}  // namespace tcpanaly::trace

namespace tcpanaly::trace {
namespace {

TEST(Pcap, FuzzedInputNeverCrashes) {
  // Random byte soup and truncations must either parse or throw -- never
  // crash or hang.
  util::Rng rng(0xfeedface);
  for (int round = 0; round < 200; ++round) {
    std::string blob;
    const std::size_t len = rng.next_below(600);
    for (std::size_t i = 0; i < len; ++i)
      blob.push_back(static_cast<char>(rng.next_below(256)));
    // Half the rounds: start from a valid magic so the parser goes deeper.
    if (round % 2 == 0) {
      const unsigned char magic[4] = {0xd4, 0xc3, 0xb2, 0xa1};
      blob.replace(0, std::min<std::size_t>(4, blob.size()),
                   reinterpret_cast<const char*>(magic),
                   std::min<std::size_t>(4, blob.size()));
    }
    std::stringstream in(blob);
    try {
      auto result = read_pcap(in);
      (void)result;
    } catch (const std::runtime_error&) {
      // acceptable
    }
  }
  SUCCEED();
}

TEST(Pcap, TruncatedValidFileThrowsOrParsesPrefix) {
  Trace tr;
  tr.meta().local = {0x0a000001, 1};
  tr.meta().remote = {0x0a000002, 2};
  PacketRecord rec;
  rec.src = tr.meta().local;
  rec.dst = tr.meta().remote;
  rec.tcp.payload_len = 100;
  rec.tcp.flags.ack = true;
  for (int i = 0; i < 4; ++i) {
    rec.timestamp = util::TimePoint(1000 * i);
    rec.tcp.seq = 1 + 100 * i;
    tr.push_back(rec);
  }
  std::stringstream full;
  write_pcap(full, tr);
  const std::string bytes = full.str();
  for (std::size_t cut = 0; cut < bytes.size(); cut += 7) {
    std::stringstream in(bytes.substr(0, cut));
    try {
      auto result = read_pcap(in);
      EXPECT_LE(result.trace.size(), 4u);
    } catch (const std::runtime_error&) {
      // acceptable for torn headers
    }
  }
}

}  // namespace
}  // namespace tcpanaly::trace

namespace tcpanaly::trace {
namespace {

TEST(Wire, VlanTaggedFrameDecodes) {
  PacketRecord rec;
  rec.src = {0x0a000001, 1234};
  rec.dst = {0x0a000002, 80};
  rec.tcp.seq = 42;
  rec.tcp.flags.ack = true;
  rec.tcp.ack = 7;
  rec.tcp.payload_len = 20;
  auto frame = encode_frame(rec);
  // Splice a 802.1Q tag (TPID 0x8100, VID 5) after the MACs.
  std::vector<std::uint8_t> tagged(frame.begin(), frame.begin() + 12);
  tagged.push_back(0x81);
  tagged.push_back(0x00);
  tagged.push_back(0x00);
  tagged.push_back(0x05);
  tagged.insert(tagged.end(), frame.begin() + 12, frame.end());
  auto decoded = decode_frame(tagged);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->tcp.seq, 42u);
  EXPECT_EQ(decoded->src.port, 1234);
  EXPECT_TRUE(decoded->checksum_ok);
}

}  // namespace
}  // namespace tcpanaly::trace

namespace tcpanaly::trace {
namespace {

// Helpers building capture files byte-by-byte, independent of the writer
// under test.
void le16(std::vector<std::uint8_t>& v, std::uint16_t x) {
  v.push_back(x & 0xff);
  v.push_back((x >> 8) & 0xff);
}
void le32(std::vector<std::uint8_t>& v, std::uint32_t x) {
  le16(v, static_cast<std::uint16_t>(x & 0xffff));
  le16(v, static_cast<std::uint16_t>(x >> 16));
}

PacketRecord sample_record(std::uint32_t seq, std::uint32_t payload) {
  PacketRecord rec;
  rec.src = {0x0a000001, 4000};
  rec.dst = {0x0a000002, 5000};
  rec.tcp.seq = seq;
  rec.tcp.flags.ack = true;
  rec.tcp.ack = 1;
  rec.tcp.payload_len = payload;
  return rec;
}

TEST(Wire, LinuxSllFrameDecodes) {
  auto eth = encode_frame(sample_record(100, 64));
  // Replace the 14-byte Ethernet header with a 16-byte SLL header.
  std::vector<std::uint8_t> sll(16, 0);
  sll[14] = 0x08;  // protocol = IPv4, big-endian
  sll[15] = 0x00;
  sll.insert(sll.end(), eth.begin() + kEthernetHeaderLen, eth.end());
  auto decoded = decode_frame(kLinktypeLinuxSll, sll);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->tcp.seq, 100u);
  EXPECT_EQ(decoded->tcp.payload_len, 64u);
  EXPECT_TRUE(decoded->checksum_ok);
}

TEST(Wire, RawIpAndNullLinktypesDecode) {
  auto eth = encode_frame(sample_record(7, 32));
  std::vector<std::uint8_t> raw(eth.begin() + kEthernetHeaderLen, eth.end());
  auto from_raw = decode_frame(kLinktypeRaw, raw);
  ASSERT_TRUE(from_raw.has_value());
  EXPECT_EQ(from_raw->tcp.seq, 7u);

  std::vector<std::uint8_t> loop = {2, 0, 0, 0};  // AF_INET, little-endian host
  loop.insert(loop.end(), raw.begin(), raw.end());
  auto from_null = decode_frame(kLinktypeNull, loop);
  ASSERT_TRUE(from_null.has_value());
  EXPECT_EQ(from_null->tcp.seq, 7u);

  EXPECT_FALSE(decode_frame(kLinktypeNull, raw).has_value());
  EXPECT_FALSE(decode_frame(999, eth).has_value());
  EXPECT_FALSE(linktype_supported(999));
  EXPECT_TRUE(linktype_supported(kLinktypeLinuxSll));
}

TEST(PcapIo, NanosecondPcapReads) {
  std::vector<std::uint8_t> file;
  le32(file, 0xa1b23c4d);  // nanosecond magic
  le16(file, 2);
  le16(file, 4);
  le32(file, 0);
  le32(file, 0);
  le32(file, 65535);
  le32(file, 1);  // Ethernet
  auto frame = encode_frame(sample_record(1, 100));
  for (std::uint32_t nsec : {250'000'000u, 750'000'500u}) {
    le32(file, 10);  // seconds
    le32(file, nsec);
    le32(file, static_cast<std::uint32_t>(frame.size()));
    le32(file, static_cast<std::uint32_t>(frame.size()));
    file.insert(file.end(), frame.begin(), frame.end());
  }
  std::stringstream in(std::string(file.begin(), file.end()));
  auto result = read_pcap(in);
  ASSERT_EQ(result.trace.size(), 2u);
  // Timestamps are relative to the first packet, at microsecond precision.
  EXPECT_EQ(result.trace.records()[0].timestamp.count(), 0);
  EXPECT_EQ(result.trace.records()[1].timestamp.count(), 500'000);
}

// Build a minimal pcapng section: SHB + IDB (with optional if_tsresol) +
// EPBs at the given tick timestamps.
std::vector<std::uint8_t> build_pcapng(std::uint16_t linktype,
                                       std::optional<std::uint8_t> tsresol,
                                       const std::vector<std::uint64_t>& ticks,
                                       std::span<const std::uint8_t> frame) {
  std::vector<std::uint8_t> f;
  // SHB: type, len, byte-order magic, version 1.0, section length -1.
  le32(f, 0x0a0d0d0a);
  le32(f, 28);
  le32(f, 0x1a2b3c4d);
  le16(f, 1);
  le16(f, 0);
  le32(f, 0xffffffff);
  le32(f, 0xffffffff);
  le32(f, 28);
  // IDB.
  std::vector<std::uint8_t> idb_body;
  le16(idb_body, linktype);
  le16(idb_body, 0);
  le32(idb_body, 65535);  // snaplen
  if (tsresol) {
    le16(idb_body, 9);  // if_tsresol
    le16(idb_body, 1);
    idb_body.push_back(*tsresol);
    idb_body.insert(idb_body.end(), 3, 0);  // pad
    le16(idb_body, 0);                      // opt_endofopt
    le16(idb_body, 0);
  }
  const std::uint32_t idb_len = 12 + static_cast<std::uint32_t>(idb_body.size());
  le32(f, 1);
  le32(f, idb_len);
  f.insert(f.end(), idb_body.begin(), idb_body.end());
  le32(f, idb_len);
  // EPBs.
  for (std::uint64_t t : ticks) {
    const std::uint32_t cap = static_cast<std::uint32_t>(frame.size());
    const std::uint32_t pad = (4 - cap % 4) % 4;
    const std::uint32_t len = 32 + cap + pad;
    le32(f, 6);
    le32(f, len);
    le32(f, 0);  // interface 0
    le32(f, static_cast<std::uint32_t>(t >> 32));
    le32(f, static_cast<std::uint32_t>(t & 0xffffffff));
    le32(f, cap);
    le32(f, cap);
    f.insert(f.end(), frame.begin(), frame.end());
    f.insert(f.end(), pad, 0);
    le32(f, len);
  }
  return f;
}

TEST(PcapIo, PcapngEnhancedPacketsRead) {
  auto frame = encode_frame(sample_record(1, 100));
  auto file = build_pcapng(1, std::nullopt, {5'000'000, 5'040'000}, frame);
  std::stringstream in(std::string(file.begin(), file.end()));
  auto result = read_pcapng(in);
  ASSERT_EQ(result.trace.size(), 2u);
  EXPECT_EQ(result.trace.records()[0].timestamp.count(), 0);
  EXPECT_EQ(result.trace.records()[1].timestamp.count(), 40'000);
  EXPECT_EQ(result.skipped_frames, 0u);
  EXPECT_TRUE(result.trace.records()[0].checksum_ok);
}

TEST(PcapIo, PcapngHonorsTsresol) {
  auto frame = encode_frame(sample_record(1, 100));
  // Nanosecond resolution (base-10 exponent 9).
  auto file = build_pcapng(1, std::uint8_t{9}, {0, 250'000'000}, frame);
  std::stringstream in(std::string(file.begin(), file.end()));
  auto result = read_pcapng(in);
  ASSERT_EQ(result.trace.size(), 2u);
  EXPECT_EQ(result.trace.records()[1].timestamp.count(), 250'000);

  // Base-2 resolution: 2^20 ticks per second.
  auto file2 = build_pcapng(1, std::uint8_t{0x80 | 20}, {0, 1u << 19}, frame);
  std::stringstream in2(std::string(file2.begin(), file2.end()));
  auto result2 = read_pcapng(in2);
  ASSERT_EQ(result2.trace.size(), 2u);
  EXPECT_EQ(result2.trace.records()[1].timestamp.count(), 500'000);
}

TEST(PcapIo, PcapngRejectsMalformed) {
  auto frame = encode_frame(sample_record(1, 100));
  auto file = build_pcapng(1, std::nullopt, {0}, frame);
  // Packet block before any SHB.
  std::string no_shb(file.begin() + 28, file.end());
  std::stringstream in(no_shb);
  EXPECT_THROW(read_pcapng(in), std::runtime_error);
  // EPB referencing an interface that was never described.
  std::vector<std::uint8_t> shb_only(file.begin(), file.begin() + 28);
  std::vector<std::uint8_t> epb(file.begin() + 28 + 20, file.end());
  shb_only.insert(shb_only.end(), epb.begin(), epb.end());
  std::stringstream in2(std::string(shb_only.begin(), shb_only.end()));
  EXPECT_THROW(read_pcapng(in2), std::runtime_error);
}

TEST(PcapIo, CaptureFileSniffsFormat) {
  auto frame = encode_frame(sample_record(1, 100));
  auto ng = build_pcapng(1, std::nullopt, {0, 1'000}, frame);
  const std::string dir = ::testing::TempDir();
  const std::string ng_path = dir + "/sniff_test.pcapng";
  {
    std::ofstream f(ng_path, std::ios::binary);
    f.write(reinterpret_cast<const char*>(ng.data()),
            static_cast<std::streamsize>(ng.size()));
  }
  auto loaded = read_capture_file(ng_path);
  EXPECT_EQ(loaded.trace.size(), 2u);

  Trace t;
  auto rec = sample_record(1, 100);
  rec.timestamp = util::TimePoint(0);
  t.push_back(rec);
  const std::string pcap_path = dir + "/sniff_test.pcap";
  write_pcap_file(pcap_path, t);
  auto loaded2 = read_capture_file(pcap_path);
  EXPECT_EQ(loaded2.trace.size(), 1u);
}

}  // namespace
}  // namespace tcpanaly::trace
