// Zero-copy ingestion equivalence: the mmap sources are pinned
// bit-identical to the istream sources they shadow.
//
//   * Accepted captures (scenario grid, both formats, both vantages, plus
//     every accepted file in the fuzz regression corpus) must produce the
//     same records -- timestamps, endpoints, full TCP tuple, checksum
//     verdicts -- and the same skipped_frames count.
//   * Rejected captures (truncations at awkward offsets) must fail with
//     the stream parser's exact diagnostic, byte for byte.
//   * next_batch() must be a pure batching of next(): any span size
//     yields the same record sequence.
//   * The path-based open_capture_source must take the mmap route for a
//     regular file and agree with the byte-stream route record for record.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "corpus/corpus.hpp"
#include "tcp/profiles.hpp"
#include "tcp/session.hpp"
#include "trace/mmap_source.hpp"
#include "trace/pcap_io.hpp"
#include "trace/record_source.hpp"

namespace tcpanaly::trace {
namespace {

const std::filesystem::path kCorpusDir = TCPANALY_FUZZ_CORPUS_DIR;

Trace scenario_trace(const char* impl, double loss, std::int64_t delay_ms,
                     std::uint64_t seed, bool sender_side) {
  corpus::ScenarioParams p;
  p.loss_prob = loss;
  p.one_way_delay = util::Duration::millis(delay_ms);
  p.transfer_bytes = 48 * 1024;
  p.seed = seed;
  auto r = tcp::run_session(corpus::make_session(*tcp::find_profile(impl), p));
  return sender_side ? r.sender_trace : r.receiver_trace;
}

/// The capture byte strings the suite sweeps: a spread of implementations
/// and network conditions from both vantage points, in both formats, plus
/// a zero-record capture. Stream-vs-offline identity over the full grid is
/// stream_equivalence_test's job; here the grid only has to exercise every
/// parser branch (timestamps, options, skipped frames, empty input).
std::vector<std::pair<std::string, std::string>> capture_grid() {
  std::vector<std::pair<std::string, std::string>> out;  // (label, bytes)
  const struct {
    const char* impl;
    double loss;
    std::int64_t delay_ms;
    std::uint64_t seed;
  } cells[] = {
      {"Generic Reno", 0.0, 20, 7},
      {"Generic Tahoe", 0.05, 60, 3},
      {"Solaris 2.4", 0.0, 340, 9},
      {"Windows 95", 0.03, 200, 5},
  };
  for (const auto& c : cells) {
    for (bool sender : {true, false}) {
      const Trace tr = scenario_trace(c.impl, c.loss, c.delay_ms, c.seed, sender);
      std::ostringstream pcap;
      write_pcap(pcap, tr);
      out.emplace_back(std::string(c.impl) + (sender ? "/snd/pcap" : "/rcv/pcap"),
                       pcap.str());
      std::ostringstream pcapng;
      write_pcapng(pcapng, tr);
      out.emplace_back(std::string(c.impl) + (sender ? "/snd/pcapng" : "/rcv/pcapng"),
                       pcapng.str());
    }
  }
  std::ostringstream empty_pcap;
  write_pcap(empty_pcap, Trace(TraceMeta{}));
  out.emplace_back("empty/pcap", empty_pcap.str());
  std::ostringstream empty_pcapng;
  write_pcapng(empty_pcapng, Trace(TraceMeta{}));
  out.emplace_back("empty/pcapng", empty_pcapng.str());
  return out;
}

struct Drained {
  std::vector<PacketRecord> records;
  std::size_t skipped = 0;
  bool ok = true;
  std::string error;
};

Drained drain(RecordSource& src) {
  Drained out;
  while (auto rec = src.next()) out.records.push_back(std::move(*rec));
  out.skipped = src.skipped_frames();
  return out;
}

Drained drain_stream(const std::string& bytes, const util::ParseLimits& limits = {}) {
  Drained out;
  try {
    std::istringstream in(bytes);
    auto src = open_capture_source(in, limits);
    out = drain(*src);
  } catch (const std::runtime_error& e) {
    out.ok = false;
    out.error = e.what();
  }
  return out;
}

std::shared_ptr<const MappedCapture> capture_of(const std::string& bytes) {
  return std::make_shared<const MappedCapture>(
      MappedCapture::from_bytes(std::vector<std::uint8_t>(bytes.begin(), bytes.end())));
}

Drained drain_mmap(const std::string& bytes, const util::ParseLimits& limits = {}) {
  Drained out;
  try {
    auto src = open_mapped_source(capture_of(bytes), limits);
    out = drain(*src);
  } catch (const std::runtime_error& e) {
    out.ok = false;
    out.error = e.what();
  }
  return out;
}

void expect_identical(const Drained& stream, const Drained& mmap,
                      const std::string& label) {
  ASSERT_EQ(stream.ok, mmap.ok) << label << ": stream said \"" << stream.error
                                << "\", mmap said \"" << mmap.error << "\"";
  EXPECT_EQ(stream.error, mmap.error) << label;
  ASSERT_EQ(stream.records.size(), mmap.records.size()) << label;
  EXPECT_EQ(stream.skipped, mmap.skipped) << label;
  for (std::size_t i = 0; i < stream.records.size(); ++i) {
    const PacketRecord& a = stream.records[i];
    const PacketRecord& b = mmap.records[i];
    ASSERT_EQ(a.timestamp.count(), b.timestamp.count()) << label << " record " << i;
    ASSERT_TRUE(a.src == b.src) << label << " record " << i;
    ASSERT_TRUE(a.dst == b.dst) << label << " record " << i;
    ASSERT_TRUE(a.tcp == b.tcp) << label << " record " << i;
    ASSERT_EQ(a.checksum_known, b.checksum_known) << label << " record " << i;
    ASSERT_EQ(a.checksum_ok, b.checksum_ok) << label << " record " << i;
  }
}

TEST(MmapEquivalence, GridCapturesAreBitIdentical) {
  for (const auto& [label, bytes] : capture_grid()) {
    const Drained stream = drain_stream(bytes);
    ASSERT_TRUE(stream.ok) << label << ": " << stream.error;
    expect_identical(stream, drain_mmap(bytes), label);
  }
}

TEST(MmapEquivalence, FuzzCorpusAgreesOnAcceptAndRecords) {
  // Every checked-in regression input, accepted or not: the two paths must
  // agree on the outcome, the diagnostic, and (when accepted) the records.
  ASSERT_TRUE(std::filesystem::is_directory(kCorpusDir)) << kCorpusDir;
  std::size_t files = 0;
  std::size_t accepted = 0;
  for (const auto& entry : std::filesystem::directory_iterator(kCorpusDir)) {
    if (!entry.is_regular_file()) continue;
    ++files;
    std::ifstream in(entry.path(), std::ios::binary);
    ASSERT_TRUE(in) << entry.path();
    const std::string bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    const util::ParseLimits limits = util::ParseLimits::fuzzing();
    const Drained stream = drain_stream(bytes, limits);
    expect_identical(stream, drain_mmap(bytes, limits), entry.path().string());
    if (stream.ok) ++accepted;
  }
  EXPECT_GE(files, 1u);
  EXPECT_GE(accepted, 1u);  // the corpus keeps at least one accepted capture
}

TEST(MmapEquivalence, TruncationsRejectWithTheStreamDiagnostic) {
  const Trace tr = scenario_trace("Generic Reno", 0.02, 20, 17, true);
  std::ostringstream pcap;
  write_pcap(pcap, tr);
  std::ostringstream pcapng;
  write_pcapng(pcapng, tr);
  for (const std::string& whole : {pcap.str(), pcapng.str()}) {
    for (const std::size_t cut : {std::size_t{0}, std::size_t{3}, std::size_t{17},
                                  std::size_t{40}, whole.size() / 2, whole.size() - 3,
                                  whole.size() - 1}) {
      const std::string bytes = whole.substr(0, cut);
      expect_identical(drain_stream(bytes), drain_mmap(bytes),
                       "cut=" + std::to_string(cut));
    }
  }
}

TEST(MmapEquivalence, NextBatchIsAPureBatchingOfNext) {
  const auto grid = capture_grid();
  ASSERT_FALSE(grid.empty());
  const std::string& bytes = grid.front().second;
  const Drained one_by_one = drain_mmap(bytes);
  ASSERT_TRUE(one_by_one.ok) << one_by_one.error;
  for (const std::size_t span : {std::size_t{1}, std::size_t{7}, kRecordBatch}) {
    auto src = open_mapped_source(capture_of(bytes));
    Drained batched;
    std::vector<PacketRecord> buf(span);
    while (const std::size_t got = src->next_batch(buf))
      batched.records.insert(batched.records.end(), buf.begin(),
                             buf.begin() + static_cast<std::ptrdiff_t>(got));
    batched.skipped = src->skipped_frames();
    expect_identical(one_by_one, batched, "span=" + std::to_string(span));
  }
}

TEST(MmapEquivalence, PathOpenMapsRegularFilesAndMatchesStream) {
  const Trace tr = scenario_trace("Generic Reno", 0.0, 20, 7, true);
  std::ostringstream out;
  write_pcap(out, tr);
  const std::string bytes = out.str();
  const std::filesystem::path path =
      std::filesystem::path(::testing::TempDir()) / "mmap_equivalence.pcap";
  {
    std::ofstream f(path, std::ios::binary);
    ASSERT_TRUE(f) << path;
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  // The file really is mapped, not buffered.
  const MappedCapture mapped = MappedCapture::map_file(path.string());
  EXPECT_TRUE(mapped.is_mapped());
  ASSERT_EQ(mapped.bytes().size(), bytes.size());

  auto src = open_capture_source(path.string());
  Drained from_path = drain(*src);
  expect_identical(drain_stream(bytes), from_path, "path open");

  // And the materializing reader built on top of it agrees with the
  // classic file reader.
  const PcapReadResult via_any = read_capture_file(path.string(), true);
  const PcapReadResult via_pcap = read_pcap_file(path.string(), true);
  ASSERT_EQ(via_any.trace.size(), via_pcap.trace.size());
  EXPECT_EQ(via_any.skipped_frames, via_pcap.skipped_frames);
  EXPECT_EQ(via_any.trace.meta().local.to_string(),
            via_pcap.trace.meta().local.to_string());
  for (std::size_t i = 0; i < via_any.trace.size(); ++i)
    EXPECT_TRUE(via_any.trace[i].tcp == via_pcap.trace[i].tcp) << "record " << i;

  std::filesystem::remove(path);
}

TEST(MmapEquivalence, MissingPathReportsOpenFailure) {
  const std::string bogus = std::string(::testing::TempDir()) + "/no_such_capture.pcap";
  try {
    (void)open_capture_source(bogus);
    FAIL() << "expected open failure";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "capture: cannot open " + bogus);
  }
}

TEST(MmapEquivalence, EmptyInputRejectedIdentically) {
  expect_identical(drain_stream(std::string()), drain_mmap(std::string()), "empty");
}

}  // namespace
}  // namespace tcpanaly::trace
