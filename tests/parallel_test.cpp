// The work-queue parallel execution layer: pool lifecycle, exception
// propagation, ordering determinism, and -- the property the batch paths
// rely on -- parallel corpus/match output being identical to serial.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/matcher.hpp"
#include "corpus/corpus.hpp"
#include "tcp/profiles.hpp"
#include "trace/pcap_io.hpp"
#include "util/parallel.hpp"

namespace tcpanaly {
namespace {

TEST(Parallel, DefaultJobsIsPositive) {
  EXPECT_GE(util::default_jobs(), 1u);
  EXPECT_EQ(util::resolve_jobs(0), util::default_jobs());
  EXPECT_EQ(util::resolve_jobs(-3), util::default_jobs());
  EXPECT_EQ(util::resolve_jobs(6), 6u);
}

TEST(Parallel, PoolDrainsQueueOnShutdown) {
  std::atomic<int> ran{0};
  {
    util::ThreadPool pool(3);
    EXPECT_EQ(pool.size(), 3u);
    for (int i = 0; i < 200; ++i)
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }  // destructor must run every queued task before joining
  EXPECT_EQ(ran.load(), 200);
}

TEST(Parallel, WaitIdleBlocksUntilQueueEmpty) {
  std::atomic<int> ran{0};
  util::ThreadPool pool(2);
  for (int i = 0; i < 50; ++i)
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 50);
  // The pool stays usable after wait_idle.
  pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 51);
}

TEST(Parallel, MapPreservesInputOrder) {
  std::vector<int> in(1000);
  for (int i = 0; i < 1000; ++i) in[i] = i;
  const auto out = util::parallel_map(in, [](int v) { return v * v; }, /*jobs=*/8);
  ASSERT_EQ(out.size(), in.size());
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(Parallel, ForEachVisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(512);
  util::parallel_for_index(
      hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); }, /*jobs=*/7);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, LowestFailingIndexWins) {
  // Several indices throw; the rethrown exception must be index 3's no
  // matter how the workers interleave.
  for (int rep = 0; rep < 10; ++rep) {
    try {
      util::parallel_for_index(
          100,
          [](std::size_t i) {
            if (i == 3 || i == 57 || i == 99)
              throw std::runtime_error("boom " + std::to_string(i));
          },
          /*jobs=*/8);
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom 3");
    }
  }
}

TEST(Parallel, SerialPathPropagatesException) {
  EXPECT_THROW(util::parallel_for_index(
                   10, [](std::size_t i) { if (i == 4) throw std::logic_error("x"); },
                   /*jobs=*/1),
               std::logic_error);
}

// -- determinism of the production fan-outs --

std::string corpus_digest(const std::vector<corpus::CorpusEntry>& entries) {
  std::stringstream buf;
  for (const auto& e : entries) {
    buf << e.impl_name << '|' << e.params.label() << '|';
    trace::write_pcap(buf, e.result.sender_trace);
    trace::write_pcap(buf, e.result.receiver_trace);
  }
  return buf.str();
}

TEST(Parallel, GenerateCorpusMatchesSerialBitwise) {
  corpus::CorpusOptions opts;
  opts.loss_probs = {0.0, 0.02};
  opts.one_way_delays = {util::Duration::millis(20)};
  opts.rates = {1'000'000.0};
  opts.seeds_per_cell = 2;

  opts.jobs = 1;
  const auto serial = corpus::generate_corpus(tcp::generic_reno(), opts);
  opts.jobs = 4;
  const auto parallel = corpus::generate_corpus(tcp::generic_reno(), opts);

  ASSERT_EQ(serial.size(), parallel.size());
  EXPECT_EQ(corpus_digest(serial), corpus_digest(parallel));
}

TEST(Parallel, MatchImplementationsMatchesSerial) {
  corpus::ScenarioParams p;
  p.loss_prob = 0.01;
  p.seed = 11;
  auto r = tcp::run_session(corpus::make_session(tcp::generic_reno(), p));

  core::MatchOptions mopts;
  mopts.jobs = 1;
  const auto serial = core::match_implementations(r.sender_trace, tcp::all_profiles(), mopts);
  mopts.jobs = 4;
  const auto parallel =
      core::match_implementations(r.sender_trace, tcp::all_profiles(), mopts);

  EXPECT_EQ(serial.render(), parallel.render());
  ASSERT_EQ(serial.fits.size(), parallel.fits.size());
  for (std::size_t i = 0; i < serial.fits.size(); ++i) {
    EXPECT_EQ(serial.fits[i].profile.name, parallel.fits[i].profile.name);
    EXPECT_EQ(serial.fits[i].penalty, parallel.fits[i].penalty);
    EXPECT_EQ(serial.fits[i].fit, parallel.fits[i].fit);
  }
}

}  // namespace
}  // namespace tcpanaly
