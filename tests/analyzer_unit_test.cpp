// Focused unit tests for the sender and receiver analyzers on synthetic
// traces: liberation mechanics, retransmission classification, corruption
// inference, ack classification, gratuitous-ack detection.
#include <gtest/gtest.h>

#include "core/receiver_analyzer.hpp"
#include "core/sender_analyzer.hpp"
#include "tcp/profiles.hpp"
#include "tcp/session.hpp"

namespace tcpanaly::core {
namespace {

using trace::Endpoint;
using trace::PacketRecord;
using trace::SeqNum;
using trace::Trace;
using util::Duration;
using util::TimePoint;

constexpr Endpoint kLocal{0x0a000001, 1000};
constexpr Endpoint kRemote{0x0a000002, 2000};
constexpr std::uint32_t kMss = 512;

class SenderTraceBuilder {
 public:
  SenderTraceBuilder() {
    tr_.meta().local = kLocal;
    tr_.meta().remote = kRemote;
    tr_.meta().role = trace::LocalRole::kSender;
    // Handshake: local SYN, remote SYN-ack, local ack.
    PacketRecord syn = base(true, 0);
    syn.tcp.seq = 1000;
    syn.tcp.flags.syn = true;
    syn.tcp.mss_option = kMss;
    syn.tcp.window = 16384;
    tr_.push_back(syn);
    PacketRecord synack = base(false, 20'000);
    synack.tcp.seq = 50'000;
    synack.tcp.ack = 1001;
    synack.tcp.flags.syn = true;
    synack.tcp.flags.ack = true;
    synack.tcp.mss_option = kMss;
    synack.tcp.window = 16384;
    tr_.push_back(synack);
    PacketRecord estack = base(true, 20'200);
    estack.tcp.seq = 1001;
    estack.tcp.ack = 50'001;
    estack.tcp.flags.ack = true;
    estack.tcp.window = 16384;
    tr_.push_back(estack);
  }

  SenderTraceBuilder& data(std::int64_t us, SeqNum seq, std::uint32_t len = kMss) {
    PacketRecord rec = base(true, us);
    rec.tcp.seq = seq;
    rec.tcp.ack = 50'001;
    rec.tcp.flags.ack = true;
    rec.tcp.payload_len = len;
    rec.tcp.window = 16384;
    tr_.push_back(rec);
    return *this;
  }

  SenderTraceBuilder& ack(std::int64_t us, SeqNum ackno, std::uint32_t window = 16384) {
    PacketRecord rec = base(false, us);
    rec.tcp.seq = 50'001;
    rec.tcp.ack = ackno;
    rec.tcp.flags.ack = true;
    rec.tcp.window = window;
    tr_.push_back(rec);
    return *this;
  }

  Trace build() { return tr_; }

 private:
  PacketRecord base(bool from_local, std::int64_t us) {
    PacketRecord rec;
    rec.timestamp = TimePoint(us);
    rec.src = from_local ? kLocal : kRemote;
    rec.dst = from_local ? kRemote : kLocal;
    return rec;
  }
  Trace tr_;
};

// --------------------------------------------------------------- sender

TEST(SenderAnalyzerUnit, CleanSlowStartNoViolations) {
  SenderTraceBuilder b;
  b.data(20'300, 1001);                 // cwnd 1
  b.ack(60'000, 1513).data(60'100, 1513).data(60'150, 2025);  // cwnd 2
  b.ack(100'000, 3037).data(100'100, 3037).data(100'150, 3549).data(100'200, 4061);
  auto rep = SenderAnalyzer(tcp::generic_reno()).analyze(b.build());
  EXPECT_TRUE(rep.handshake_seen);
  EXPECT_EQ(rep.mss, kMss);
  EXPECT_TRUE(rep.violations.empty());
  EXPECT_EQ(rep.unexplained_retransmissions, 0u);
  EXPECT_EQ(rep.data_packets, 6u);
  EXPECT_LT(rep.response_delays.mean().to_millis(), 1.0);
}

TEST(SenderAnalyzerUnit, BurstBeyondInitialCwndIsViolation) {
  SenderTraceBuilder b;
  // Five segments immediately after the handshake: a 1-MSS initial window
  // cannot have sent these.
  for (int i = 0; i < 5; ++i) b.data(20'300 + i * 50, 1001 + i * kMss);
  auto rep = SenderAnalyzer(tcp::generic_reno()).analyze(b.build());
  EXPECT_GE(rep.violations.size(), 3u);
}

TEST(SenderAnalyzerUnit, Net3ProfileExplainsTheBurst) {
  // The same opening burst is legal for a Net/3 stack whose peer omitted
  // the MSS option (uninitialized cwnd).
  SenderTraceBuilder b;
  Trace tr = b.build();
  tr[1].tcp.mss_option.reset();  // SYN-ack without MSS
  for (int i = 0; i < 5; ++i) {
    PacketRecord rec;
    rec.timestamp = TimePoint(20'300 + i * 50);
    rec.src = kLocal;
    rec.dst = kRemote;
    rec.tcp.seq = 1001 + i * 536;  // default MSS without the option
    rec.tcp.ack = 50'001;
    rec.tcp.flags.ack = true;
    rec.tcp.payload_len = 536;
    rec.tcp.window = 16384;
    tr.push_back(rec);
  }
  auto net3 = SenderAnalyzer(*tcp::find_profile("BSDI")).analyze(tr);
  EXPECT_TRUE(net3.violations.empty());
  auto correct = SenderAnalyzer(*tcp::find_profile("HP/UX")).analyze(tr);
  EXPECT_FALSE(correct.violations.empty());
}

TEST(SenderAnalyzerUnit, FastRetransmitClassified) {
  SenderTraceBuilder b;
  b.data(20'300, 1001);
  b.ack(60'000, 1513);
  for (int i = 0; i < 4; ++i) b.data(60'100 + i * 50, 1513 + i * kMss);
  // Three dup acks at 1513 (one packet lost), then the resend.
  b.ack(100'000, 1513).ack(100'500, 1513).ack(101'000, 1513);
  b.data(101'100, 1513);
  auto rep = SenderAnalyzer(tcp::generic_reno()).analyze(b.build());
  EXPECT_EQ(rep.fast_retransmit_events, 1u);
  EXPECT_EQ(rep.timeout_events, 0u);
  EXPECT_EQ(rep.unexplained_retransmissions, 0u);
  EXPECT_EQ(rep.dup_acks_seen, 3u);
}

TEST(SenderAnalyzerUnit, TimeoutClassifiedWhenPlausible) {
  SenderTraceBuilder b;
  b.data(20'300, 1001);
  // Silence for well over a second, then the resend.
  b.data(3'200'000, 1001);
  auto rep = SenderAnalyzer(tcp::generic_reno()).analyze(b.build());
  EXPECT_EQ(rep.timeout_events, 1u);
  EXPECT_EQ(rep.unexplained_retransmissions, 0u);
}

TEST(SenderAnalyzerUnit, PrematureTimeoutUnexplainedForBsd) {
  SenderTraceBuilder b;
  b.data(20'300, 1001);
  b.data(320'300, 1001);  // 300 ms later: impossible for a 1 s-floor timer
  auto bsd = SenderAnalyzer(tcp::generic_reno()).analyze(b.build());
  EXPECT_EQ(bsd.unexplained_retransmissions, 1u);
  ASSERT_EQ(bsd.unexplained_indices.size(), 1u);
  auto solaris = SenderAnalyzer(*tcp::find_profile("Solaris 2.4")).analyze(b.build());
  EXPECT_EQ(solaris.unexplained_retransmissions, 0u);
}

TEST(SenderAnalyzerUnit, SenderWindowInferredFromPeakFlight) {
  SenderTraceBuilder b;
  // cwnd-plausible growth, but the flight never exceeds 2 segments even
  // though 16 KB is offered: a 1 KB socket buffer in force.
  b.data(20'300, 1001);
  b.ack(60'000, 1513).data(60'100, 1513).data(60'150, 2025);
  b.ack(100'000, 2537).data(100'100, 2537).data(100'150, 3049);
  b.ack(140'000, 3561).data(140'100, 3561).data(140'150, 4073);
  b.ack(180'000, 4585).data(180'100, 4585).data(180'150, 5097);
  b.ack(220'000, 5609).data(220'100, 5609).data(220'150, 6121);
  b.ack(260'000, 6633).data(260'100, 6633).data(260'150, 7145);
  auto rep = SenderAnalyzer(tcp::generic_reno()).analyze(b.build());
  EXPECT_EQ(rep.inferred_sender_window, 2 * kMss);
  EXPECT_TRUE(rep.sender_window_limited);
  EXPECT_TRUE(rep.violations.empty());
}

TEST(SenderAnalyzerUnit, UncappedFlowNotWindowLimited) {
  SenderTraceBuilder b;
  b.data(20'300, 1001);
  b.ack(60'000, 1513).data(60'100, 1513).data(60'150, 2025);
  b.ack(100'000, 2025).data(100'100, 2025).data(100'150, 2537).data(100'200, 3049);
  auto rep = SenderAnalyzer(tcp::generic_reno()).analyze(b.build());
  EXPECT_FALSE(rep.sender_window_limited);
  EXPECT_TRUE(rep.violations.empty());
}

// -------------------------------------------------------------- receiver

class ReceiverTraceBuilder {
 public:
  ReceiverTraceBuilder() {
    tr_.meta().local = kLocal;
    tr_.meta().remote = kRemote;
    tr_.meta().role = trace::LocalRole::kReceiver;
    PacketRecord syn;
    syn.timestamp = TimePoint(0);
    syn.src = kRemote;
    syn.dst = kLocal;
    syn.tcp.seq = 1000;
    syn.tcp.flags.syn = true;
    syn.tcp.mss_option = kMss;
    tr_.push_back(syn);
    // Handshake third ack: gives the analyzer its ack baseline, as every
    // real trace does.
    acks(100, 1001);
  }

  ReceiverTraceBuilder& arrives(std::int64_t us, SeqNum seq, std::uint32_t len = kMss,
                                bool checksum_known = false, bool checksum_ok = true) {
    PacketRecord rec;
    rec.timestamp = TimePoint(us);
    rec.src = kRemote;
    rec.dst = kLocal;
    rec.tcp.seq = seq;
    rec.tcp.payload_len = len;
    rec.tcp.flags.ack = true;
    rec.checksum_known = checksum_known;
    rec.checksum_ok = checksum_ok;
    tr_.push_back(rec);
    return *this;
  }

  ReceiverTraceBuilder& acks(std::int64_t us, SeqNum ackno, std::uint32_t window = 8192) {
    PacketRecord rec;
    rec.timestamp = TimePoint(us);
    rec.src = kLocal;
    rec.dst = kRemote;
    rec.tcp.seq = 60'001;
    rec.tcp.ack = ackno;
    rec.tcp.flags.ack = true;
    rec.tcp.window = window;
    tr_.push_back(rec);
    return *this;
  }

  Trace build() { return tr_; }

 private:
  Trace tr_;
};

TEST(ReceiverAnalyzerUnit, ClassifiesNormalDelayedStretch) {
  ReceiverTraceBuilder b;
  b.arrives(10'000, 1001).arrives(11'000, 1513).acks(11'100, 2025);    // normal
  b.arrives(20'000, 2025).acks(120'000, 2537);                         // delayed (100 ms)
  b.arrives(130'000, 2537).arrives(131'000, 3049).arrives(132'000, 3561)
      .arrives(133'000, 4073).acks(133'100, 4585);                     // stretch
  auto rep = ReceiverAnalyzer(tcp::generic_reno()).analyze(b.build());
  EXPECT_EQ(rep.normal_acks, 1u);
  EXPECT_EQ(rep.delayed_acks, 1u);
  EXPECT_EQ(rep.stretch_acks, 1u);
  EXPECT_NEAR(rep.delayed_ack_delays.mean().to_millis(), 100.0, 0.5);
}

TEST(ReceiverAnalyzerUnit, DupAckForOutOfOrderData) {
  ReceiverTraceBuilder b;
  b.arrives(10'000, 1001).arrives(11'000, 1513).acks(11'100, 2025);
  b.arrives(20'000, 2537);  // hole at 2025
  b.acks(20'100, 2025);     // immediate dup
  auto rep = ReceiverAnalyzer(tcp::generic_reno()).analyze(b.build());
  EXPECT_EQ(rep.dup_acks, 1u);
  EXPECT_EQ(rep.mandatory_missed, 0u);
  EXPECT_EQ(rep.gratuitous_acks, 0u);
}

TEST(ReceiverAnalyzerUnit, LateMandatoryAckCountsMissed) {
  ReceiverTraceBuilder b;
  b.arrives(10'000, 1001).arrives(11'000, 1513).acks(11'100, 2025);
  b.arrives(20'000, 2537);  // hole at 2025: mandatory obligation
  b.acks(400'000, 2025);    // discharged 380 ms later: far too late
  auto rep = ReceiverAnalyzer(tcp::generic_reno()).analyze(b.build());
  EXPECT_EQ(rep.mandatory_missed, 1u);
}

TEST(ReceiverAnalyzerUnit, GratuitousAckFlagged) {
  ReceiverTraceBuilder b;
  b.arrives(10'000, 1001).arrives(11'000, 1513).acks(11'100, 2025);
  b.acks(300'000, 2025);  // out of nowhere: no data, no window change
  auto rep = ReceiverAnalyzer(tcp::generic_reno()).analyze(b.build());
  EXPECT_EQ(rep.gratuitous_acks, 1u);
}

TEST(ReceiverAnalyzerUnit, WindowUpdateNotGratuitous) {
  ReceiverTraceBuilder b;
  b.arrives(10'000, 1001).arrives(11'000, 1513).acks(11'100, 2025, 8192);
  b.acks(300'000, 2025, 16384);  // pure window update
  auto rep = ReceiverAnalyzer(tcp::generic_reno()).analyze(b.build());
  EXPECT_EQ(rep.gratuitous_acks, 0u);
  EXPECT_EQ(rep.window_update_acks, 1u);
}

TEST(ReceiverAnalyzerUnit, InfersCorruptionFromMissingAcks) {
  // A packet "arrives" (headers-only capture: checksum unknown) but the
  // TCP keeps dup-acking below it long past any ack-policy delay; the
  // remote retransmits and only then do acks advance. tcpanaly infers the
  // original arrival was discarded as corrupted (paper section 7).
  ReceiverTraceBuilder b;
  b.arrives(10'000, 1001).arrives(11'000, 1513).acks(11'100, 2025);
  b.arrives(20'000, 2025);      // this one arrived corrupted (unknowable)
  b.arrives(21'000, 2537);      // next packet: TCP treats it as out of order
  b.acks(21'100, 2025);         // dup ack (too soon to judge)
  b.arrives(300'000, 3049);     // more data above the hole
  b.acks(300'100, 2025);        // STILL 2025, 280 ms on: discard evident
  b.arrives(1'300'000, 2025);   // retransmission arrives intact
  b.acks(1'300'100, 3561);      // now everything acks through
  auto rep = ReceiverAnalyzer(tcp::generic_reno()).analyze(b.build());
  EXPECT_EQ(rep.inferred_corrupt_packets, 1u);
  EXPECT_EQ(rep.checksum_verified_corrupt, 0u);
}

TEST(ReceiverAnalyzerUnit, VerifiedChecksumShortCircuitsInference) {
  ReceiverTraceBuilder b;
  b.arrives(10'000, 1001).arrives(11'000, 1513).acks(11'100, 2025);
  b.arrives(20'000, 2025, kMss, /*checksum_known=*/true, /*checksum_ok=*/false);
  b.arrives(1'300'000, 2025).arrives(1'301'000, 2537);
  b.acks(1'301'100, 3049);
  auto rep = ReceiverAnalyzer(tcp::generic_reno()).analyze(b.build());
  EXPECT_EQ(rep.checksum_verified_corrupt, 1u);
  EXPECT_EQ(rep.inferred_corrupt_packets, 0u);
}

TEST(ReceiverAnalyzerUnit, PolicyViolationWhenDelayExceedsTimer) {
  ReceiverTraceBuilder b;
  b.arrives(10'000, 1001).acks(95'000, 1513);  // 85 ms delayed ack
  auto solaris = ReceiverAnalyzer(*tcp::find_profile("Solaris 2.4")).analyze(b.build());
  EXPECT_EQ(solaris.policy_violations, 1u);  // > 50 ms + slack
  auto bsd = ReceiverAnalyzer(tcp::generic_reno()).analyze(b.build());
  EXPECT_EQ(bsd.policy_violations, 0u);  // fine for a 200 ms heartbeat
}

}  // namespace
}  // namespace tcpanaly::core

namespace tcpanaly::core {
namespace {

TEST(InitialSsthreshInference, RecoversRouteCacheValue) {
  // The experimental route-cache TCP (section 6.2) starts with ssthresh =
  // 6 segments; the sweep must find it from the trace alone.
  tcp::SessionConfig cfg = tcp::default_session();
  cfg.sender_profile = tcp::experimental_route_cache(6);
  cfg.receiver_profile = cfg.sender_profile;
  cfg.seed = 2;
  auto r = tcp::run_session(cfg);
  ASSERT_TRUE(r.completed);
  const std::uint32_t inferred =
      infer_initial_ssthresh(r.sender_trace, tcp::experimental_route_cache(6));
  EXPECT_EQ(inferred, 6u);
}

TEST(InitialSsthreshInference, DefaultStackInfersUnbounded) {
  tcp::SessionConfig cfg = tcp::default_session();
  cfg.sender_profile = tcp::generic_reno();
  cfg.receiver_profile = cfg.sender_profile;
  cfg.seed = 3;
  auto r = tcp::run_session(cfg);
  EXPECT_EQ(infer_initial_ssthresh(r.sender_trace, tcp::generic_reno()), 0u);
}

TEST(InitialSsthreshInference, RecoversSolarisEightSegments) {
  tcp::SessionConfig cfg = tcp::default_session();
  cfg.sender_profile = *tcp::find_profile("Solaris 2.4");
  cfg.receiver_profile = cfg.sender_profile;
  cfg.seed = 4;
  auto r = tcp::run_session(cfg);
  EXPECT_EQ(infer_initial_ssthresh(r.sender_trace, *tcp::find_profile("Solaris 2.4")), 8u);
}

}  // namespace
}  // namespace tcpanaly::core
