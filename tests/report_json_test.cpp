// The report subsystem's foundations: JSON round-trip (writer output is
// re-parseable and equal), escaping, deterministic number formatting,
// strict parse failures, and the StageTimer observability layer.
#include <gtest/gtest.h>

#include "report/json.hpp"
#include "report/report.hpp"
#include "util/stage_timer.hpp"

namespace tcpanaly {
namespace {

using report::Json;
using report::JsonParseError;

TEST(JsonTest, RoundTripNestedDocument) {
  Json doc = Json::object();
  doc.set("name", "trace");
  doc.set("count", 42);
  doc.set("penalty", 12.5);
  doc.set("flag", true);
  doc.set("nothing", nullptr);
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back("two");
  arr.push_back(Json::object().set("k", -3));
  doc.set("items", std::move(arr));

  for (int indent : {-1, 0, 2, 4}) {
    Json back = Json::parse(doc.dump(indent));
    EXPECT_EQ(back, doc) << "indent=" << indent;
  }
}

TEST(JsonTest, ObjectKeepsInsertionOrderAndOverwritesInPlace) {
  Json doc = Json::object();
  doc.set("z", 1).set("a", 2).set("z", 3);
  ASSERT_EQ(doc.members().size(), 2u);
  EXPECT_EQ(doc.members()[0].first, "z");
  EXPECT_EQ(doc.members()[0].second.as_int(), 3);
  EXPECT_EQ(doc.members()[1].first, "a");
  EXPECT_EQ(doc.dump(), "{\"z\":3,\"a\":2}");
}

TEST(JsonTest, StringEscapingRoundTrips) {
  const std::string nasty = "quote\" backslash\\ newline\n tab\t ctrl\x01 high\xc3\xa9";
  Json doc = Json::object();
  doc.set(nasty, nasty);
  Json back = Json::parse(doc.dump());
  ASSERT_EQ(back.members().size(), 1u);
  EXPECT_EQ(back.members()[0].first, nasty);
  EXPECT_EQ(back.members()[0].second.as_string(), nasty);
  // Control characters must be escaped, not emitted raw.
  EXPECT_EQ(doc.dump().find('\x01'), std::string::npos);
  EXPECT_EQ(doc.dump().find('\n'), std::string::npos);
}

TEST(JsonTest, UnicodeEscapesDecode) {
  EXPECT_EQ(Json::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(Json::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");          // é
  EXPECT_EQ(Json::parse("\"\\uD83D\\uDE00\"").as_string(), "\xf0\x9f\x98\x80");  // 😀
  EXPECT_THROW(Json::parse("\"\\uD83D\""), JsonParseError);  // unpaired surrogate
}

TEST(JsonTest, IntegersStayIntegral) {
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-7).dump(), "-7");
  EXPECT_EQ(Json(std::uint64_t{9007199254740993ULL}).dump(), "9007199254740993");
  EXPECT_TRUE(Json::parse("42").is_int());
  EXPECT_EQ(Json::parse("9223372036854775807").as_int(), 9223372036854775807LL);
  EXPECT_FALSE(Json::parse("42.0").is_int());
  EXPECT_EQ(Json::parse("42.0").as_int(), 42);  // integral double converts
}

TEST(JsonTest, DoublesRoundTripExactly) {
  for (double v : {0.1, 1.0 / 3.0, 1e-12, 6.02e23, -2.5, 12345.6789}) {
    Json back = Json::parse(Json(v).dump());
    EXPECT_EQ(back.as_double(), v);
  }
  // JSON has no NaN/Inf literal; the writer degrades them to null.
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "tru", "\"abc", "{\"a\":}", "[1 2]", "1 2", "{} {}",
        "{'a':1}", "[01]x", "\"\x01\"", "{\"a\":1,}"}) {
    EXPECT_THROW(Json::parse(bad), JsonParseError) << "input: " << bad;
  }
}

TEST(JsonTest, ParseErrorCarriesOffset) {
  try {
    Json::parse("[1, 2, xyz]");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_EQ(e.offset(), 7u);
  }
}

TEST(JsonTest, FindAndRemove) {
  Json doc = Json::parse(R"({"a":1,"timings":{"total_us":5},"b":2})");
  ASSERT_NE(doc.find("timings"), nullptr);
  EXPECT_TRUE(doc.remove("timings"));
  EXPECT_FALSE(doc.remove("timings"));
  EXPECT_EQ(doc.find("timings"), nullptr);
  EXPECT_EQ(doc.dump(), "{\"a\":1,\"b\":2}");
}

TEST(JsonTest, TypeMismatchThrows) {
  EXPECT_THROW(Json(42).as_string(), std::logic_error);
  EXPECT_THROW(Json("x").as_int(), std::logic_error);
  EXPECT_THROW(Json(1.5).as_int(), std::logic_error);  // non-integral double
  EXPECT_THROW(Json::array().members(), std::logic_error);
}

TEST(JsonTest, NdjsonLinesParseIndependently) {
  Json row = Json::object();
  row.set("file", "a.pcap");
  row.set("penalty", 1.5);
  const std::string ndjson = row.dump() + "\n" + row.dump() + "\n";
  // Compact dumps are single-line by construction.
  std::size_t lines = 0, start = 0;
  while (true) {
    std::size_t nl = ndjson.find('\n', start);
    if (nl == std::string::npos) break;
    EXPECT_EQ(Json::parse(ndjson.substr(start, nl - start)), row);
    ++lines;
    start = nl + 1;
  }
  EXPECT_EQ(lines, 2u);
}

TEST(JsonTest, DocumentHeaderCarriesSchemaVersion) {
  Json doc = report::document_header("analysis");
  ASSERT_NE(doc.find("schema_version"), nullptr);
  EXPECT_EQ(doc.find("schema_version")->as_int(), report::kSchemaVersion);
  EXPECT_EQ(doc.find("tool")->find("name")->as_string(), report::kToolName);
  EXPECT_EQ(doc.find("type")->as_string(), "analysis");
  EXPECT_NE(report::version_line().find(report::kToolVersion), std::string::npos);
}

TEST(StageTimerTest, RecordsStagesInOrderWithCounters) {
  util::StageTimer timer;
  {
    auto scope = timer.stage("load");
    scope.counter("records", 85);
  }
  {
    auto scope = timer.stage("match");
    scope.counter("candidates", 14);
    scope.stop();
    scope.stop();  // idempotent
  }
  timer.add("match:Generic Reno", util::Duration::micros(120));

  ASSERT_EQ(timer.stages().size(), 3u);
  EXPECT_EQ(timer.stages()[0].name, "load");
  EXPECT_GT(timer.stages()[0].wall.count(), 0);  // never 0: rounded up to >= 1 us
  ASSERT_EQ(timer.stages()[0].counters.size(), 1u);
  EXPECT_EQ(timer.stages()[0].counters[0].first, "records");
  EXPECT_EQ(timer.stages()[0].counters[0].second, 85u);
  EXPECT_EQ(timer.stages()[1].name, "match");
  EXPECT_EQ(timer.stages()[2].name, "match:Generic Reno");
  EXPECT_EQ(timer.stages()[2].wall.count(), 120);
  EXPECT_GE(timer.total().count(), 122);
}

TEST(StageTimerTest, MaybeOnNullTimerIsInert) {
  auto scope = util::StageTimer::maybe(nullptr, "load");
  scope.counter("records", 1);  // must not crash
  scope.stop();

  util::StageTimer timer;
  { auto s = util::StageTimer::maybe(&timer, "real"); }
  ASSERT_EQ(timer.stages().size(), 1u);
  EXPECT_EQ(timer.stages()[0].name, "real");
}

TEST(StageTimerTest, NestedStagesSurviveVectorGrowth) {
  // Scopes hold indices, not pointers: opening many stages while earlier
  // scopes are still running must not invalidate them.
  util::StageTimer timer;
  auto outer = timer.stage("outer");
  for (int i = 0; i < 100; ++i) timer.add("inner", util::Duration::micros(1));
  outer.counter("inners", 100);
  outer.stop();
  ASSERT_EQ(timer.stages().size(), 101u);
  EXPECT_EQ(timer.stages()[0].counters[0].second, 100u);
}

}  // namespace
}  // namespace tcpanaly
