// tcpanalyd end to end, without a process boundary: protocol parsing, the
// rotating NDJSON writer, and an in-process Daemon draining a spool and
// answering its control socket.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "corpus/corpus.hpp"
#include "daemon/capture_job.hpp"
#include "daemon/daemon.hpp"
#include "daemon/ndjson_writer.hpp"
#include "daemon/protocol.hpp"
#include "daemon/server.hpp"
#include "report/json.hpp"
#include "tcp/profiles.hpp"
#include "tcp/session.hpp"
#include "trace/pcap_io.hpp"

namespace tcpanaly {
namespace {

namespace fs = std::filesystem;

// -- protocol --

TEST(DaemonProtocol, ParsesEveryCommand) {
  EXPECT_EQ(daemon::parse_command("STATUS").type, daemon::CommandType::kStatus);
  EXPECT_EQ(daemon::parse_command("DRAIN").type, daemon::CommandType::kDrain);
  EXPECT_EQ(daemon::parse_command("SHUTDOWN").type, daemon::CommandType::kShutdown);
  const auto analyze = daemon::parse_command("ANALYZE /tmp/x.pcap");
  EXPECT_EQ(analyze.type, daemon::CommandType::kAnalyze);
  EXPECT_EQ(analyze.arg, "/tmp/x.pcap");
}

TEST(DaemonProtocol, ToleratesCarriageReturnAndPadding) {
  const auto cmd = daemon::parse_command("ANALYZE  /a b.pcap \r");
  EXPECT_EQ(cmd.type, daemon::CommandType::kAnalyze);
  EXPECT_EQ(cmd.arg, "/a b.pcap");
  EXPECT_EQ(daemon::parse_command("STATUS\r").type, daemon::CommandType::kStatus);
}

TEST(DaemonProtocol, RejectsMalformedRequests) {
  EXPECT_EQ(daemon::parse_command("").type, daemon::CommandType::kInvalid);
  EXPECT_EQ(daemon::parse_command("FROBNICATE").type, daemon::CommandType::kInvalid);
  // ANALYZE without a path, and argument-less verbs WITH one, are errors:
  // silently ignoring operands would mask client bugs.
  EXPECT_EQ(daemon::parse_command("ANALYZE").type, daemon::CommandType::kInvalid);
  EXPECT_EQ(daemon::parse_command("ANALYZE ").type, daemon::CommandType::kInvalid);
  EXPECT_EQ(daemon::parse_command("STATUS now").type, daemon::CommandType::kInvalid);
  EXPECT_EQ(daemon::parse_command("analyze /x").type, daemon::CommandType::kInvalid);
  EXPECT_FALSE(daemon::parse_command("FROBNICATE").error.empty());
}

// -- ndjson writer --

std::vector<std::string> read_lines(const fs::path& p) {
  std::vector<std::string> lines;
  std::ifstream in(p);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(DaemonNdjson, RotatesAtThresholdWithoutLosingRows) {
  const fs::path dir = fs::temp_directory_path() / "tcpanaly_ndjson_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const fs::path out = dir / "results.ndjson";

  const std::string row = R"({"n":1234567890})";  // 17 bytes + newline
  {
    daemon::NdjsonWriter writer(out.string(), /*rotate_bytes=*/64);
    for (int i = 0; i < 10; ++i) writer.write_row(row);
    EXPECT_EQ(writer.rows(), 10u);
    // 18 bytes/row, 64-byte threshold: segments rotate after 4 rows.
    EXPECT_GE(writer.rotations(), 2u);
  }
  std::size_t total = read_lines(out).size();
  for (std::uint64_t n = 1;; ++n) {
    const fs::path seg = out.string() + "." + std::to_string(n);
    if (!fs::exists(seg)) break;
    for (const auto& line : read_lines(seg)) {
      EXPECT_EQ(line, row);  // rotation never splits a line
      ++total;
    }
  }
  EXPECT_EQ(total, 10u);
  fs::remove_all(dir);
}

TEST(DaemonNdjson, AppendsToExistingFileAndCountsItsBytes) {
  const fs::path dir = fs::temp_directory_path() / "tcpanaly_ndjson_append_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const fs::path out = dir / "results.ndjson";
  std::ofstream(out) << std::string(100, 'x') << "\n";

  // The pre-existing 101 bytes already exceed the threshold, so the FIRST
  // write must rotate instead of growing the old segment forever.
  daemon::NdjsonWriter writer(out.string(), /*rotate_bytes=*/64);
  writer.write_row("{}");
  EXPECT_EQ(writer.rotations(), 1u);
  EXPECT_TRUE(fs::exists(out.string() + ".1"));
  EXPECT_EQ(read_lines(out), std::vector<std::string>{"{}"});
  fs::remove_all(dir);
}

// -- the daemon end to end --

/// A small two-profile candidate set keeps per-flow matching fast; the
/// full registry is exercised by the batch/corpus tests.
std::vector<tcp::TcpProfile> quick_candidates() {
  return {tcp::generic_tahoe(), tcp::generic_reno()};
}

/// Write one simulated single-connection sender capture.
void write_capture(const fs::path& path) {
  corpus::ScenarioParams p;
  p.loss_prob = 0.01;
  p.seed = 7;
  const auto session = tcp::run_session(corpus::make_session(tcp::generic_reno(), p));
  trace::write_pcap_file(path.string(), session.sender_trace);
}

TEST(DaemonEndToEnd, DrainsSpoolAndReportsEveryCapture) {
  const fs::path dir = fs::temp_directory_path() / "tcpanaly_daemon_e2e_test";
  fs::remove_all(dir);
  const fs::path spool = dir / "spool";
  fs::create_directories(spool);
  const fs::path seed = dir / "seed.pcap";
  write_capture(seed);
  constexpr int kCaptures = 6;
  for (int i = 0; i < kCaptures; ++i)
    fs::copy_file(seed, spool / ("cap" + std::to_string(i) + ".pcap"));

  daemon::DaemonOptions opts;
  opts.spool_dirs = {spool};
  opts.out_path = (dir / "out.ndjson").string();
  opts.jobs = 2;
  opts.max_rss_mb = 256;
  opts.poll_ms = 20;
  opts.stats_interval_s = 0;  // only the closing heartbeat
  opts.exit_when_drained = true;
  opts.candidates = quick_candidates();
  daemon::Daemon d(std::move(opts));
  EXPECT_EQ(d.run(), 0);

  const auto snap = d.snapshot();
  EXPECT_EQ(snap.captures_done, static_cast<std::uint64_t>(kCaptures));
  EXPECT_EQ(snap.captures_failed, 0u);
  EXPECT_EQ(snap.spool_claimed, static_cast<std::uint64_t>(kCaptures));
  EXPECT_EQ(snap.flows.seen, static_cast<std::uint64_t>(kCaptures));
  EXPECT_EQ(snap.mem_gate.admitted, static_cast<std::uint64_t>(kCaptures));

  // Every capture moved to done/; one flow + one trace row each, plus the
  // closing daemon_stats row.
  std::size_t done = 0;
  for ([[maybe_unused]] const auto& e : fs::directory_iterator(spool / "done")) ++done;
  EXPECT_EQ(done, static_cast<std::size_t>(kCaptures));
  std::size_t flows = 0, traces = 0, stats = 0;
  for (const auto& line : read_lines(dir / "out.ndjson")) {
    const auto doc = report::Json::parse(line);
    ASSERT_NE(doc.find("type"), nullptr);
    const std::string& type = doc.find("type")->as_string();
    flows += type == "flow";
    traces += type == "trace";
    stats += type == "daemon_stats";
  }
  EXPECT_EQ(flows, static_cast<std::size_t>(kCaptures));
  EXPECT_EQ(traces, static_cast<std::size_t>(kCaptures));
  EXPECT_EQ(stats, 1u);
  fs::remove_all(dir);
}

TEST(DaemonEndToEnd, OnceModeExitsNonZeroWhenACaptureFails) {
  const fs::path dir = fs::temp_directory_path() / "tcpanaly_daemon_fail_test";
  fs::remove_all(dir);
  const fs::path spool = dir / "spool";
  fs::create_directories(spool);
  write_capture(spool / "good.pcap");
  std::ofstream(spool / "bad.pcap") << "this is not a capture";

  daemon::DaemonOptions opts;
  opts.spool_dirs = {spool};
  opts.out_path = (dir / "out.ndjson").string();
  opts.jobs = 2;
  opts.poll_ms = 20;
  opts.stats_interval_s = 0;
  opts.exit_when_drained = true;
  opts.candidates = quick_candidates();
  daemon::Daemon d(std::move(opts));
  EXPECT_EQ(d.run(), 1);
  EXPECT_EQ(d.snapshot().captures_failed, 1u);
  EXPECT_TRUE(fs::exists(spool / "done" / "good.pcap"));
  EXPECT_TRUE(fs::exists(spool / "failed" / "bad.pcap"));
  fs::remove_all(dir);
}

TEST(DaemonEndToEnd, ControlSocketAnalyzeStatusDrainShutdown) {
  const fs::path dir = fs::temp_directory_path() / "tcpanaly_daemon_sock_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const fs::path capture = dir / "one.pcap";
  write_capture(capture);
  const std::string sock = (dir / "ctl.sock").string();

  daemon::DaemonOptions opts;
  opts.socket_path = sock;
  opts.out_path = (dir / "out.ndjson").string();
  opts.jobs = 2;
  opts.poll_ms = 20;
  opts.stats_interval_s = 0;
  opts.candidates = quick_candidates();
  daemon::Daemon d(std::move(opts));
  std::thread runner([&d] { EXPECT_EQ(d.run(), 0); });

  // The daemon binds the socket before entering its loop, so the first
  // request only needs to out-wait thread startup.
  std::string response;
  for (int attempt = 0;; ++attempt) {
    try {
      response = daemon::request(sock, "ANALYZE " + capture.string());
      break;
    } catch (const std::exception&) {
      ASSERT_LT(attempt, 100) << "daemon socket never came up";
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  EXPECT_EQ(response, "OK queued " + capture.string());
  EXPECT_EQ(daemon::request(sock, "ANALYZE " + (dir / "missing.pcap").string()),
            "ERR no such capture: " + (dir / "missing.pcap").string());
  EXPECT_EQ(daemon::request(sock, "BOGUS"), "ERR unknown command: BOGUS");
  EXPECT_EQ(daemon::request(sock, "DRAIN"), "OK drained");

  const auto status = report::Json::parse(daemon::request(sock, "STATUS"));
  ASSERT_NE(status.find("type"), nullptr);
  EXPECT_EQ(status.find("type")->as_string(), "daemon_stats");
  EXPECT_EQ(status.find("captures_done")->as_int(), 1);
  EXPECT_EQ(status.find("socket_accepted")->as_int(), 1);

  EXPECT_EQ(daemon::request(sock, "SHUTDOWN"), "OK shutting down");
  runner.join();
  EXPECT_FALSE(fs::exists(sock));  // unlinked on the way out
  fs::remove_all(dir);
}

// run_capture_job is the shared unit under both --batch and the daemon:
// its rows must not depend on which engine scheduled it.
TEST(DaemonEndToEnd, CaptureJobRowsAreDeterministic) {
  const fs::path dir = fs::temp_directory_path() / "tcpanaly_capture_job_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const fs::path capture = dir / "one.pcap";
  write_capture(capture);

  daemon::CaptureJobOptions jopts;
  jopts.candidates = quick_candidates();
  const auto a = daemon::run_capture_job({capture, "one.pcap"}, jopts);
  const auto b = daemon::run_capture_job({capture, "one.pcap"}, jopts);
  ASSERT_FALSE(a.failed());
  ASSERT_EQ(a.flow_rows.size(), 1u);
  EXPECT_EQ(a.flow_rows[0].to_json().dump(), b.flow_rows[0].to_json().dump());
  EXPECT_EQ(a.trace.trace.file, "one.pcap");
  EXPECT_TRUE(a.trace.flows.has_value());
  fs::remove_all(dir);
}

}  // namespace
}  // namespace tcpanaly
