// Tests for the per-connection summary statistics.
#include <gtest/gtest.h>

#include "core/summary.hpp"
#include "tcp/profiles.hpp"
#include "tcp/session.hpp"

namespace tcpanaly::core {
namespace {

TEST(Summary, EmptyTraceSafe) {
  trace::Trace empty;
  auto s = summarize(empty);
  EXPECT_EQ(s.data_packets, 0u);
  EXPECT_EQ(s.duration, util::Duration::zero());
  EXPECT_FALSE(s.render().empty());
}

TEST(Summary, CleanTransferAccounting) {
  tcp::SessionConfig cfg = tcp::default_session();
  cfg.sender_profile = tcp::generic_reno();
  cfg.receiver_profile = cfg.sender_profile;
  auto r = tcp::run_session(cfg);
  ASSERT_TRUE(r.completed);
  auto s = summarize(r.sender_trace);
  EXPECT_TRUE(s.saw_syn);
  EXPECT_TRUE(s.saw_synack);
  EXPECT_TRUE(s.saw_fin);
  EXPECT_EQ(s.unique_bytes, 100u * 1024u);
  EXPECT_EQ(s.data_bytes, 100u * 1024u);  // no loss: no retransmissions
  EXPECT_EQ(s.retransmitted_packets, 0u);
  EXPECT_EQ(s.data_packets, r.sender_stats.data_packets);
  EXPECT_GT(s.goodput_bytes_per_sec, 50'000.0);
  EXPECT_EQ(s.min_window_in, 16384u);
}

TEST(Summary, RetransmissionAccountingMatchesSender) {
  tcp::SessionConfig cfg = tcp::default_session();
  cfg.sender_profile = tcp::generic_reno();
  cfg.receiver_profile = cfg.sender_profile;
  cfg.fwd_path.loss_prob = 0.03;
  cfg.seed = 4;
  auto r = tcp::run_session(cfg);
  ASSERT_TRUE(r.completed);
  auto s = summarize(r.sender_trace);
  EXPECT_EQ(s.retransmitted_packets, r.sender_stats.retransmissions);
  EXPECT_EQ(s.unique_bytes, 100u * 1024u);
  EXPECT_GT(s.retransmission_rate, 0.0);
  EXPECT_GT(s.dup_acks_in, 0u);
}

TEST(Summary, RttSamplesBracketPathRtt) {
  tcp::SessionConfig cfg = tcp::default_session();  // 40 ms RTT path
  cfg.sender_profile = tcp::generic_reno();
  cfg.receiver_profile = cfg.sender_profile;
  auto r = tcp::run_session(cfg);
  auto s = summarize(r.sender_trace);
  ASSERT_GT(s.rtt.count(), 20u);
  EXPECT_GE(s.rtt.min(), util::Duration::millis(40));
  // Delayed acks can stretch samples toward +200 ms, never below the path.
  EXPECT_LE(s.rtt.min(), util::Duration::millis(60));
}

TEST(Summary, KarnRuleExcludesRetransmittedSegments) {
  // At RTT 680 ms, the Solaris timer retransmits nearly everything;
  // Karn-valid samples must never be contaminated below the path RTT.
  tcp::SessionConfig cfg = tcp::default_session();
  cfg.sender_profile = *tcp::find_profile("Solaris 2.4");
  cfg.receiver_profile = cfg.sender_profile;
  cfg.fwd_path.prop_delay = util::Duration::millis(340);
  cfg.rev_path.prop_delay = util::Duration::millis(340);
  auto r = tcp::run_session(cfg);
  auto s = summarize(r.sender_trace);
  EXPECT_GT(s.retransmitted_packets, 50u);
  if (!s.rtt.empty()) {
    EXPECT_GE(s.rtt.min(), util::Duration::millis(680));
  }
}

TEST(Summary, ReceiverSideTraceDescribesRemoteSender) {
  tcp::SessionConfig cfg = tcp::default_session();
  cfg.sender_profile = tcp::generic_reno();
  cfg.receiver_profile = cfg.sender_profile;
  auto r = tcp::run_session(cfg);
  auto s = summarize(r.receiver_trace);
  EXPECT_EQ(s.unique_bytes, 100u * 1024u);
  EXPECT_GT(s.acks_in, 0u);  // the local receiver's acks
}

}  // namespace
}  // namespace tcpanaly::core
