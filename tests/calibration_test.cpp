// Unit tests for the calibration detectors (paper section 3) on
// hand-built synthetic traces where each error's presence is exact.
#include <gtest/gtest.h>

#include "core/calibration.hpp"

namespace tcpanaly::core {
namespace {

using trace::Endpoint;
using trace::PacketRecord;
using trace::SeqNum;
using trace::Trace;
using util::TimePoint;

constexpr Endpoint kLocal{0x0a000001, 1000};
constexpr Endpoint kRemote{0x0a000002, 2000};

class TraceBuilder {
 public:
  explicit TraceBuilder(trace::LocalRole role = trace::LocalRole::kSender) {
    tr_.meta().local = kLocal;
    tr_.meta().remote = kRemote;
    tr_.meta().role = role;
  }

  TraceBuilder& data(std::int64_t us, SeqNum seq, std::uint32_t len,
                     bool from_local = true) {
    PacketRecord rec;
    rec.timestamp = TimePoint(us);
    rec.src = from_local ? kLocal : kRemote;
    rec.dst = from_local ? kRemote : kLocal;
    rec.tcp.seq = seq;
    rec.tcp.payload_len = len;
    rec.tcp.flags.ack = true;
    tr_.push_back(rec);
    return *this;
  }

  TraceBuilder& ack(std::int64_t us, SeqNum ackno, std::uint32_t window = 8192,
                    bool from_local = false) {
    PacketRecord rec;
    rec.timestamp = TimePoint(us);
    rec.src = from_local ? kLocal : kRemote;
    rec.dst = from_local ? kRemote : kLocal;
    rec.tcp.flags.ack = true;
    rec.tcp.ack = ackno;
    rec.tcp.window = window;
    tr_.push_back(rec);
    return *this;
  }

  Trace build() { return tr_; }

 private:
  Trace tr_;
};

// ----------------------------------------------------------- time travel

TEST(TimeTravel, DetectsBackwardStep) {
  auto tr = TraceBuilder().data(1000, 1, 100).data(900, 101, 100).data(2000, 201, 100).build();
  auto rep = detect_time_travel(tr);
  ASSERT_EQ(rep.instances.size(), 1u);
  EXPECT_EQ(rep.instances[0].record_index, 1u);
  EXPECT_EQ(rep.instances[0].magnitude, util::Duration::micros(100));
  EXPECT_TRUE(rep.clock_untrustworthy());
}

TEST(TimeTravel, MonotoneTraceClean) {
  auto tr = TraceBuilder().data(1, 1, 10).data(1, 11, 10).data(2, 21, 10).build();
  EXPECT_TRUE(detect_time_travel(tr).instances.empty());
}

// ------------------------------------------------------------- additions

TEST(Duplication, DetectsSystematicDoubles) {
  TraceBuilder b;
  // 6 packets, each recorded twice: once at OS time, once ~500 us later.
  for (int i = 0; i < 6; ++i) {
    const std::int64_t t = 10'000 * i;
    b.data(t, 1 + 512 * i, 512);
    b.data(t + 500, 1 + 512 * i, 512);
  }
  auto rep = detect_measurement_duplicates(b.build());
  EXPECT_EQ(rep.duplicate_indices.size(), 6u);
  // The later copy of each pair is the one flagged (odd indices).
  for (std::size_t i = 0; i < rep.duplicate_indices.size(); ++i)
    EXPECT_EQ(rep.duplicate_indices[i] % 2, 1u);
}

TEST(Duplication, SparseRepeatsAreRetransmissionsNotDuplicates) {
  TraceBuilder b;
  for (int i = 0; i < 10; ++i) b.data(10'000 * i, 1 + 512 * i, 512);
  b.data(200'000, 1, 512);  // one genuine retransmission, 200 ms later
  auto rep = detect_measurement_duplicates(b.build());
  EXPECT_TRUE(rep.duplicate_indices.empty());
}

TEST(Duplication, StripRemovesExactlyTheLaterCopies) {
  TraceBuilder b;
  for (int i = 0; i < 6; ++i) {
    b.data(10'000 * i, 1 + 512 * i, 512);
    b.data(10'000 * i + 400, 1 + 512 * i, 512);
  }
  Trace tr = b.build();
  auto rep = detect_measurement_duplicates(tr);
  Trace cleaned = strip_duplicates(tr, rep);
  EXPECT_EQ(cleaned.size(), 6u);
  EXPECT_TRUE(detect_measurement_duplicates(cleaned).duplicate_indices.empty());
}

TEST(Duplication, RecoversBothRates) {
  TraceBuilder b;
  // First copies 200 us apart (2.56 MB/s of 512-byte payloads), second
  // copies 512 us apart (1 MB/s).
  for (int i = 0; i < 20; ++i) b.data(200 * i, 1 + 512 * i, 512);
  for (int i = 0; i < 20; ++i) b.data(10'000 + 512 * i, 1 + 512 * i, 512);
  Trace tr = b.build();
  tr.stable_sort_by_timestamp();
  auto rep = detect_measurement_duplicates(tr);
  ASSERT_EQ(rep.duplicate_indices.size(), 20u);
  EXPECT_NEAR(rep.first_copy_rate, 512.0 / 200e-6, 512.0 / 200e-6 * 0.1);
  EXPECT_NEAR(rep.second_copy_rate, 512.0 / 512e-6, 1e6 * 0.1);
}

// ---------------------------------------------------------- resequencing

TEST(Resequencing, DetectsDataBeforeLiberatingAck) {
  // The local host sends beyond the offered window; the explaining ack is
  // recorded 400 us later: the filter displaced it.
  auto tr = TraceBuilder()
                .ack(0, 1, 1024)
                .data(100, 1, 512)
                .data(200, 513, 512)
                .data(300'000, 1025, 512)  // beyond 1 + 1024
                .ack(300'400, 1025, 1024)  // the late-recorded liberator
                .build();
  auto rep = detect_resequencing(tr);
  ASSERT_FALSE(rep.instances.empty());
  EXPECT_EQ(rep.instances[0].kind, ResequencingKind::kDataBeforeLiberatingAck);
  EXPECT_EQ(rep.instances[0].record_index, 4u);
}

TEST(Resequencing, CleanTraceHasNoInstances) {
  auto tr = TraceBuilder()
                .ack(0, 1, 4096)
                .data(100, 1, 512)
                .data(200, 513, 512)
                .ack(40'000, 1025, 4096)
                .data(40'100, 1025, 512)
                .build();
  EXPECT_TRUE(detect_resequencing(tr).instances.empty());
}

TEST(Resequencing, ReceiverSideAckBeforeData) {
  TraceBuilder b(trace::LocalRole::kReceiver);
  b.data(0, 1, 512, /*from_local=*/false);
  b.ack(100, 513, 8192, /*from_local=*/true);
  // Local host acks 1025 although the covering data is recorded after.
  b.ack(50'000, 1025, 8192, /*from_local=*/true);
  b.data(50'300, 513, 512, /*from_local=*/false);
  auto rep = detect_resequencing(b.build());
  ASSERT_FALSE(rep.instances.empty());
  EXPECT_EQ(rep.instances[0].kind, ResequencingKind::kAckForDataNotYetArrived);
  EXPECT_EQ(rep.instances[0].record_index, 2u);
}

// ---------------------------------------------------------- filter drops

TEST(FilterDrops, AckForUnseenData) {
  auto tr = TraceBuilder()
                .data(0, 1, 512)
                .ack(40'000, 513)
                .ack(80'000, 2049)  // acks 1536 bytes never recorded as sent
                .build();
  auto rep = detect_filter_drops(tr);
  ASSERT_FALSE(rep.findings.empty());
  EXPECT_EQ(rep.findings[0].check, DropCheck::kAckForUnseenData);
  EXPECT_EQ(rep.inferred_missing_bytes, 1536u);
}

TEST(FilterDrops, AckedHoleNeverSent) {
  auto tr = TraceBuilder()
                .data(0, 1, 512)
                .data(100, 1025, 512)  // 513..1024 never recorded
                .ack(40'000, 1537)
                .build();
  auto rep = detect_filter_drops(tr);
  ASSERT_FALSE(rep.findings.empty());
  EXPECT_EQ(rep.findings[0].check, DropCheck::kAckedHoleNeverSent);
  EXPECT_EQ(rep.inferred_missing_bytes, 512u);
}

TEST(FilterDrops, GenuineNetworkLossIsNotAFilterDrop) {
  // Data sent, lost in the network, retransmitted, then acked: complete
  // record, nothing for the filter to answer for.
  auto tr = TraceBuilder()
                .data(0, 1, 512)
                .data(100, 513, 512)
                .ack(40'000, 513)          // second packet lost in network
                .data(1'200'000, 513, 512) // timeout retransmission
                .ack(1'240'000, 1025)
                .build();
  auto rep = detect_filter_drops(tr);
  EXPECT_TRUE(rep.findings.empty()) << static_cast<int>(rep.findings[0].check);
}

TEST(FilterDrops, ReceiverSideLocalAckForUnseenData) {
  TraceBuilder b(trace::LocalRole::kReceiver);
  b.data(0, 1, 512, false);
  b.ack(100, 513, 8192, true);
  b.ack(40'000, 1537, 8192, true);  // 513..1536 never recorded arriving
  auto rep = detect_filter_drops(b.build());
  ASSERT_FALSE(rep.findings.empty());
  EXPECT_EQ(rep.findings[0].check, DropCheck::kLocalAckForUnseenData);
  EXPECT_EQ(rep.inferred_missing_bytes, 1024u);
}

TEST(FilterDrops, ReceiverSideAckedHoleNeverArrived) {
  TraceBuilder b(trace::LocalRole::kReceiver);
  b.data(0, 1, 512, false);
  b.data(100, 1025, 512, false);  // hole 513..1024 never recorded
  b.ack(200, 1537, 8192, true);
  auto rep = detect_filter_drops(b.build());
  ASSERT_FALSE(rep.findings.empty());
  EXPECT_EQ(rep.findings[0].check, DropCheck::kAckedHoleNeverArrived);
}

TEST(FilterDrops, OfferedWindowViolationFlagged) {
  auto tr = TraceBuilder()
                .ack(0, 1, 1024)
                .data(100, 1, 512)
                .data(200, 513, 512)
                .data(300, 1025, 512)  // 512 bytes beyond the offered window
                .build();
  auto rep = detect_filter_drops(tr);
  ASSERT_FALSE(rep.findings.empty());
  EXPECT_EQ(rep.findings[0].check, DropCheck::kOfferedWindowViolation);
}

// ----------------------------------------------------------- aggregation

TEST(Calibrate, CleanSyntheticTraceTrustworthy) {
  auto tr = TraceBuilder()
                .ack(0, 1, 8192)
                .data(100, 1, 512)
                .data(200, 513, 512)
                .ack(40'000, 1025)
                .build();
  auto rep = calibrate(tr);
  EXPECT_TRUE(rep.trustworthy());
  EXPECT_NE(rep.summary().find("trustworthy"), std::string::npos);
}

TEST(Calibrate, DropAndOrderChecksRunOnDeduplicatedView) {
  // Duplicated trace whose deduped view is clean: calibration must not
  // report the duplicates as drops or resequencing.
  TraceBuilder b;
  b.ack(0, 1, 8192);
  for (int i = 0; i < 6; ++i) {
    b.data(1000 * i + 100, 1 + 512 * i, 512);
    b.data(1000 * i + 600, 1 + 512 * i, 512);
  }
  b.ack(40'000, 1 + 512 * 6);
  auto rep = calibrate(b.build());
  EXPECT_FALSE(rep.duplication.duplicate_indices.empty());
  EXPECT_TRUE(rep.drops.findings.empty());
  EXPECT_TRUE(rep.resequencing.instances.empty());
  EXPECT_FALSE(rep.trustworthy());  // duplication alone makes it suspect
}

}  // namespace
}  // namespace tcpanaly::core

// Re-open the namespaces for the checks added after the original suite.
namespace tcpanaly::core {
namespace {

TEST(FilterDrops, DupAcksWithoutCause) {
  TraceBuilder b(trace::LocalRole::kReceiver);
  b.data(0, 1, 512, false);
  b.ack(100, 513, 8192, true);
  // Three dup acks with NO inbound data recorded in between: the
  // out-of-order arrivals that elicited them were dropped by the filter.
  b.ack(10'000, 513, 8192, true);
  b.ack(11'000, 513, 8192, true);
  b.ack(12'000, 513, 8192, true);
  auto rep = detect_filter_drops(b.build());
  bool found = false;
  for (const auto& f : rep.findings)
    if (f.check == DropCheck::kDupAcksWithoutCause) found = true;
  EXPECT_TRUE(found);
}

TEST(FilterDrops, DupAcksWithRecordedCauseAreFine) {
  TraceBuilder b(trace::LocalRole::kReceiver);
  b.data(0, 1, 512, false);
  b.ack(100, 513, 8192, true);
  // Each dup ack preceded by the out-of-order arrival that elicited it.
  b.data(10'000, 1025, 512, false);
  b.ack(10'100, 513, 8192, true);
  b.data(11'000, 1537, 512, false);
  b.ack(11'100, 513, 8192, true);
  b.data(12'000, 2049, 512, false);
  b.ack(12'100, 513, 8192, true);
  auto rep = detect_filter_drops(b.build());
  for (const auto& f : rep.findings)
    EXPECT_NE(f.check, DropCheck::kDupAcksWithoutCause);
}

TEST(FilterDrops, DropCheckNamesAreStable) {
  EXPECT_STREQ(to_string(DropCheck::kAckForUnseenData), "ack-for-unseen-data");
  EXPECT_STREQ(to_string(DropCheck::kCongestionWindowViolation),
               "congestion-window-violation");
}

}  // namespace
}  // namespace tcpanaly::core
