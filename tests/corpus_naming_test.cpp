// The corpus naming convention links make_corpus (which writes names) to
// tcpanaly --batch (which reads ground truth back out of them); these are
// the edge cases that earned the helpers their own translation unit.
#include <gtest/gtest.h>

#include "corpus/naming.hpp"
#include "tcp/profiles.hpp"

namespace tcpanaly {
namespace {

TEST(CorpusNamingTest, SlugLowercasesAndReplacesPunctuation) {
  EXPECT_EQ(corpus::slug("Linux 1.0"), "linux_1_0");
  EXPECT_EQ(corpus::slug("Solaris 2.5.1"), "solaris_2_5_1");
  EXPECT_EQ(corpus::slug("Windows NT/95"), "windows_nt_95");
  EXPECT_EQ(corpus::slug("reno"), "reno");
  EXPECT_EQ(corpus::slug(""), "");
}

TEST(CorpusNamingTest, LongestSlugPrefixWins) {
  // "Net" is a slug-prefix of "Net 3": the stem "net_3_0_snd" matches both
  // ("net_" and "net_3_"), and the longer one must win regardless of
  // registry order.
  auto mk = [](const char* name) {
    auto p = tcp::generic_reno();
    p.name = name;
    return p;
  };
  const std::vector<tcp::TcpProfile> fwd = {mk("Net"), mk("Net 3")};
  const std::vector<tcp::TcpProfile> rev = {mk("Net 3"), mk("Net")};
  for (const auto& registry : {fwd, rev}) {
    EXPECT_EQ(corpus::truth_from_filename("net_3_0_snd", registry), "Net 3");
    EXPECT_EQ(corpus::truth_from_filename("net_0_snd", registry), "Net");
  }
}

TEST(CorpusNamingTest, RealRegistryRoundTrips) {
  const auto registry = tcp::all_profiles();
  // Every registered profile's own naming must resolve back to it.
  for (const auto& p : registry) {
    const std::string stem = corpus::slug(p.name) + "_7_rcv";
    EXPECT_EQ(corpus::truth_from_filename(stem, registry), p.name) << stem;
  }
  // A multi-seed index keeps the prefix intact.
  EXPECT_EQ(corpus::truth_from_filename("linux_1_0_5_snd", registry), "Linux 1.0");
}

TEST(CorpusNamingTest, NoMatchYieldsEmptyTruth) {
  const auto registry = tcp::all_profiles();
  EXPECT_EQ(corpus::truth_from_filename("mystery_capture_01", registry), "");
  // The slug must be followed by '_': a mere substring is not a match.
  EXPECT_EQ(corpus::truth_from_filename("linux_1_0x", registry), "");
  EXPECT_EQ(corpus::truth_from_filename("", registry), "");
}

TEST(CorpusNamingTest, VantageSuffixOverridesFallback) {
  EXPECT_TRUE(corpus::receiver_side_from_filename("linux_1_0_0_rcv", false));
  EXPECT_FALSE(corpus::receiver_side_from_filename("linux_1_0_0_snd", true));
}

TEST(CorpusNamingTest, MissingVantageSuffixUsesFallback) {
  for (bool fallback : {false, true}) {
    EXPECT_EQ(corpus::receiver_side_from_filename("foreign_capture", fallback), fallback);
    // Stems too short to carry a suffix fall back too.
    EXPECT_EQ(corpus::receiver_side_from_filename("rcv", fallback), fallback);
    EXPECT_EQ(corpus::receiver_side_from_filename("", fallback), fallback);
  }
}

}  // namespace
}  // namespace tcpanaly
