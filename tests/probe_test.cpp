// Active-probe suite tests: each implementation's probed characteristics
// must match its profile's ground truth.
#include <gtest/gtest.h>

#include "probe/probe.hpp"
#include "tcp/profiles.hpp"

namespace tcpanaly::probe {
namespace {

ProbeReport probe(const char* name) {
  return probe_implementation(*tcp::find_profile(name));
}

TEST(Probe, BsdTimerCharacteristics) {
  auto rep = probe_implementation(tcp::generic_reno());
  ASSERT_TRUE(rep.initial_rto.has_value());
  EXPECT_NEAR(rep.initial_rto->to_seconds(), 3.0, 0.3);
  ASSERT_TRUE(rep.backoff_factor.has_value());
  EXPECT_NEAR(*rep.backoff_factor, 2.0, 0.2);
  EXPECT_FALSE(rep.flight_retransmit_on_timeout);
}

TEST(Probe, SolarisTimerCharacteristics) {
  auto rep = probe("Solaris 2.4");
  ASSERT_TRUE(rep.initial_rto.has_value());
  EXPECT_NEAR(rep.initial_rto->to_seconds(), 0.3, 0.05);
  ASSERT_TRUE(rep.backoff_factor.has_value());
  EXPECT_NEAR(*rep.backoff_factor, 2.0, 0.2);
}

TEST(Probe, LinuxTimerAndStorms) {
  auto rep = probe("Linux 1.0");
  ASSERT_TRUE(rep.initial_rto.has_value());
  EXPECT_NEAR(rep.initial_rto->to_seconds(), 1.0, 0.2);
  EXPECT_TRUE(rep.flight_retransmit_on_timeout);
  EXPECT_TRUE(rep.flight_retransmit_on_dup);
  EXPECT_FALSE(rep.fast_retransmit);
  ASSERT_TRUE(rep.dup_ack_threshold.has_value());
  EXPECT_LE(*rep.dup_ack_threshold, 2);  // storms on the first dup
}

TEST(Probe, RenoFastRetransmitAndRecovery) {
  auto rep = probe_implementation(tcp::generic_reno());
  EXPECT_TRUE(rep.fast_retransmit);
  EXPECT_TRUE(rep.fast_recovery);
  ASSERT_TRUE(rep.dup_ack_threshold.has_value());
  EXPECT_GE(*rep.dup_ack_threshold, 3);
  EXPECT_LE(*rep.dup_ack_threshold, 4);
}

TEST(Probe, TahoeHasFastRetransmitButNoRecovery) {
  auto rep = probe_implementation(tcp::generic_tahoe());
  EXPECT_TRUE(rep.fast_retransmit);
  EXPECT_FALSE(rep.fast_recovery);
}

TEST(Probe, TrumpetTimeoutOnlyWithStorms) {
  auto rep = probe("Trumpet/Winsock");
  EXPECT_FALSE(rep.fast_retransmit);
  EXPECT_TRUE(rep.flight_retransmit_on_timeout);
  EXPECT_GE(rep.first_flight_segments, 16u);  // the whole offered window
}

TEST(Probe, InitialSsthreshRecovered) {
  EXPECT_EQ(probe("Solaris 2.4").initial_ssthresh_segments.value_or(0), 8u);
  EXPECT_EQ(probe("Linux 1.0").initial_ssthresh_segments.value_or(0), 1u);
  EXPECT_FALSE(probe_implementation(tcp::generic_reno())
                   .initial_ssthresh_segments.has_value());
}

TEST(Probe, Net3BugDetectedOnlyOnNet3Stacks) {
  EXPECT_TRUE(probe("BSDI").net3_uninit_cwnd_bug);
  EXPECT_TRUE(probe("NetBSD").net3_uninit_cwnd_bug);
  EXPECT_FALSE(probe("HP/UX").net3_uninit_cwnd_bug);
  EXPECT_FALSE(probe_implementation(tcp::generic_reno()).net3_uninit_cwnd_bug);
}

TEST(Probe, AckPolicyTimers) {
  auto bsd = probe_implementation(tcp::generic_reno());
  ASSERT_TRUE(bsd.delayed_ack_timer.has_value());
  EXPECT_GT(bsd.delayed_ack_timer->to_millis(), 80.0);   // heartbeat spread
  EXPECT_LE(bsd.delayed_ack_timer->to_millis(), 230.0);

  auto solaris = probe("Solaris 2.4");
  ASSERT_TRUE(solaris.delayed_ack_timer.has_value());
  EXPECT_NEAR(solaris.delayed_ack_timer->to_millis(), 50.0, 10.0);

  EXPECT_TRUE(probe("Linux 1.0").acks_every_packet);
}

TEST(Probe, ReportRendersEveryFinding) {
  auto rep = probe("Solaris 2.4");
  const std::string out = rep.render();
  EXPECT_NE(out.find("initial RTO"), std::string::npos);
  EXPECT_NE(out.find("initial ssthresh"), std::string::npos);
  EXPECT_NE(out.find("receiver acking"), std::string::npos);
}

}  // namespace
}  // namespace tcpanaly::probe

namespace tcpanaly::probe {
namespace {

TEST(Probe, GiveUpBehaviorMeasured) {
  auto bsd = probe_implementation(tcp::generic_reno());
  ASSERT_TRUE(bsd.gives_up_after.has_value());
  EXPECT_GE(*bsd.gives_up_after, 4);
  EXPECT_TRUE(bsd.sends_rst_on_give_up);

  // The Trumpet reconstruction folds in Dawson et al.'s finding: no RST
  // when the connection is abandoned.
  auto trumpet = probe_implementation(*tcp::find_profile("Trumpet/Winsock"));
  ASSERT_TRUE(trumpet.gives_up_after.has_value());
  EXPECT_FALSE(trumpet.sends_rst_on_give_up);
}

}  // namespace
}  // namespace tcpanaly::probe
