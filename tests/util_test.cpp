// Unit tests for the util layer: time arithmetic, RNG determinism and
// distribution sanity, streaming statistics, histogram, table rendering.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>

#include "util/mem_tracker.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/time.hpp"

namespace tcpanaly::util {
namespace {

// ---------------------------------------------------------------- time

TEST(Duration, FactoryEquivalences) {
  EXPECT_EQ(Duration::millis(1), Duration::micros(1000));
  EXPECT_EQ(Duration::seconds(1.5), Duration::micros(1'500'000));
  EXPECT_EQ(Duration::zero().count(), 0);
}

TEST(Duration, Arithmetic) {
  const Duration a = Duration::millis(300);
  const Duration b = Duration::millis(200);
  EXPECT_EQ((a + b).count(), 500'000);
  EXPECT_EQ((a - b).count(), 100'000);
  EXPECT_EQ((a * 3).count(), 900'000);
  EXPECT_EQ((a / 3).count(), 100'000);
  EXPECT_EQ((-a).count(), -300'000);
}

TEST(Duration, Comparisons) {
  EXPECT_LT(Duration::millis(1), Duration::millis(2));
  EXPECT_GE(Duration::seconds(1.0), Duration::millis(1000));
  EXPECT_LT(Duration::millis(-5), Duration::zero());
}

TEST(Duration, Conversions) {
  EXPECT_DOUBLE_EQ(Duration::millis(1500).to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::micros(2500).to_millis(), 2.5);
}

TEST(Duration, ToStringFormatsMicroseconds) {
  EXPECT_EQ(Duration::micros(1'234'567).to_string(), "1.234567s");
  EXPECT_EQ(Duration::micros(5).to_string(), "0.000005s");
  EXPECT_EQ(Duration::micros(-1'500'000).to_string(), "-1.500000s");
}

TEST(TimePoint, ArithmeticWithDurations) {
  const TimePoint t = TimePoint::origin() + Duration::millis(10);
  EXPECT_EQ(t.count(), 10'000);
  EXPECT_EQ((t - Duration::millis(4)).count(), 6'000);
  EXPECT_EQ((t - TimePoint::origin()), Duration::millis(10));
}

TEST(TimePoint, InfiniteOrdersAfterEverything) {
  EXPECT_LT(TimePoint(1'000'000'000), TimePoint::infinite());
}

// ----------------------------------------------------------------- rng

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_below(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10'000.0, 0.5, 0.02);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_FALSE(rng.chance(-1.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_TRUE(rng.chance(2.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 20'000; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(hits / 20'000.0, 0.3, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 20'000; ++i) sum += rng.next_exponential(4.0);
  EXPECT_NEAR(sum / 20'000.0, 4.0, 0.2);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(42);
  Rng b = a.split();
  // The split stream must not mirror the parent.
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

// --------------------------------------------------------------- stats

TEST(OnlineStats, EmptyIsSafe) {
  OnlineStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, BasicMoments) {
  OnlineStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i) * 10;
    all.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(DurationStats, RoundTripsDurations) {
  DurationStats s;
  s.add(Duration::millis(10));
  s.add(Duration::millis(30));
  EXPECT_EQ(s.count(), 2u);
  EXPECT_EQ(s.mean(), Duration::millis(20));
  EXPECT_EQ(s.min(), Duration::millis(10));
  EXPECT_EQ(s.max(), Duration::millis(30));
}

TEST(Quantile, EmptyAndBadArgs) {
  EXPECT_FALSE(quantile({}, 0.5).has_value());
  EXPECT_FALSE(quantile({1.0}, -0.1).has_value());
  EXPECT_FALSE(quantile({1.0}, 1.1).has_value());
}

TEST(Quantile, InterpolatesLinearly) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(*quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(*quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(*quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(*quantile(v, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(*quantile(v, 0.125), 1.5);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(0.0);
  h.add(1.9);
  h.add(2.0);
  h.add(9.999);
  h.add(10.0);
  h.add(50.0);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_DOUBLE_EQ(h.bin_low(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_high(1), 4.0);
}

TEST(Histogram, RenderMentionsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string out = h.render(10);
  EXPECT_NE(out.find("1 |"), std::string::npos);
  EXPECT_NE(out.find("2 |"), std::string::npos);
}

// --------------------------------------------------------------- table

TEST(TextTable, AlignsColumns) {
  TextTable t({"a", "long header"});
  t.add_row({"xx", "y"});
  t.add_row({"1"});
  const std::string out = t.render();
  EXPECT_NE(out.find("a   long header"), std::string::npos);
  EXPECT_NE(out.find("xx  y"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Strf, FormatsLikePrintf) {
  EXPECT_EQ(strf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(strf("%.2f", 1.5), "1.50");
}

// ------------------------------------------------------------- mem gate

TEST(MemGate, UnlimitedGateCountsAdmissionsButNeverDefers) {
  MemGate gate(0);
  gate.acquire(1ull << 40);
  gate.acquire(1ull << 40);
  const auto s = gate.stats();
  EXPECT_EQ(s.admitted, 2u);
  EXPECT_EQ(s.deferred, 0u);
  EXPECT_EQ(s.oversized, 0u);
  EXPECT_EQ(s.in_flight, 2u);
  gate.release(1ull << 40);
  gate.release(1ull << 40);
  EXPECT_EQ(gate.stats().in_flight, 0u);
}

TEST(MemGate, OversizedEstimateAdmittedSoloAndCounted) {
  MemGate gate(100);
  gate.acquire(500);  // bigger than the whole budget: runs alone
  const auto s = gate.stats();
  EXPECT_EQ(s.oversized, 1u);
  EXPECT_EQ(s.admitted, 1u);
  EXPECT_EQ(s.in_use, 500u);
  gate.release(500);
}

TEST(MemGate, SecondAcquireDefersUntilReleaseAndCountsIt) {
  MemGate gate(100);
  gate.acquire(80);
  // 80 + 40 > 100: this acquire must block until the first releases, and
  // the deferral must be visible in the stats afterwards.
  std::thread blocked([&gate] {
    gate.acquire(40);
    gate.release(40);
  });
  while (gate.stats().deferred == 0) std::this_thread::yield();
  gate.release(80);
  blocked.join();
  const auto s = gate.stats();
  EXPECT_EQ(s.admitted, 2u);
  EXPECT_EQ(s.deferred, 1u);
  EXPECT_EQ(s.in_flight, 0u);
  EXPECT_EQ(s.in_use, 0u);
}

}  // namespace
}  // namespace tcpanaly::util
