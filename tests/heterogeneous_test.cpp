// Heterogeneous endpoints: the paper's transfers ran between different
// operating systems, so the analyzer must identify a sender regardless of
// which stack acks it, and a receiver regardless of which stack feeds it.
// Also sweeps MSS choices beyond the default 512.
#include <gtest/gtest.h>

#include "core/matcher.hpp"
#include "core/receiver_analyzer.hpp"
#include "core/sender_analyzer.hpp"
#include "tcp/profiles.hpp"
#include "tcp/session.hpp"

namespace tcpanaly {
namespace {

struct Pairing {
  const char* sender;
  const char* receiver;
};

class HeterogeneousPairs : public ::testing::TestWithParam<Pairing> {};

TEST_P(HeterogeneousPairs, SenderIdentifiedRegardlessOfPeer) {
  tcp::SessionConfig cfg = tcp::default_session();
  cfg.sender_profile = *tcp::find_profile(GetParam().sender);
  cfg.receiver_profile = *tcp::find_profile(GetParam().receiver);
  cfg.fwd_path.loss_prob = 0.02;
  cfg.seed = 17;
  auto r = tcp::run_session(cfg);
  ASSERT_TRUE(r.completed);
  auto rep = core::SenderAnalyzer(cfg.sender_profile).analyze(r.sender_trace);
  EXPECT_TRUE(rep.violations.empty())
      << GetParam().sender << " vs " << GetParam().receiver;
  EXPECT_EQ(rep.unexplained_retransmissions, 0u);
  auto match = core::match_implementations(r.sender_trace, tcp::all_profiles());
  EXPECT_TRUE(match.identifies(GetParam().sender)) << match.render();
}

TEST_P(HeterogeneousPairs, ReceiverIdentifiedRegardlessOfPeer) {
  tcp::SessionConfig cfg = tcp::default_session();
  cfg.sender_profile = *tcp::find_profile(GetParam().sender);
  cfg.receiver_profile = *tcp::find_profile(GetParam().receiver);
  // Slow link so delayed-ack machinery is visible.
  cfg.fwd_path.rate_bytes_per_sec = 9'000.0;
  cfg.rev_path.rate_bytes_per_sec = 9'000.0;
  cfg.sender.transfer_bytes = 24 * 1024;
  cfg.receiver.heartbeat_phase = util::Duration::millis(70);
  cfg.seed = 4;
  cfg.time_limit = util::Duration::seconds(300.0);
  auto r = tcp::run_session(cfg);
  ASSERT_TRUE(r.completed);
  auto rep = core::ReceiverAnalyzer(cfg.receiver_profile).analyze(r.receiver_trace);
  EXPECT_EQ(rep.policy_violations, 0u)
      << GetParam().sender << " feeds " << GetParam().receiver;
  EXPECT_FALSE(rep.distribution_mismatch);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, HeterogeneousPairs,
    ::testing::Values(Pairing{"Solaris 2.4", "BSDI"}, Pairing{"Linux 1.0", "Solaris 2.4"},
                      Pairing{"BSDI", "Linux 1.0"}, Pairing{"SunOS 4.1", "Solaris 2.3"},
                      Pairing{"HP/UX", "SunOS 4.1"}),
    [](const ::testing::TestParamInfo<Pairing>& info) {
      std::string name = std::string(info.param.sender) + "_to_" + info.param.receiver;
      for (char& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return name;
    });

class MssSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MssSweep, AnalysisHoldsAcrossSegmentSizes) {
  const std::uint32_t mss = GetParam();
  tcp::SessionConfig cfg = tcp::default_session();
  cfg.sender_profile = tcp::generic_reno();
  cfg.receiver_profile = cfg.sender_profile;
  cfg.sender.offered_mss = mss;
  cfg.receiver.mss_to_offer = static_cast<std::uint16_t>(mss);
  cfg.fwd_path.loss_prob = 0.02;
  cfg.seed = 6;
  auto r = tcp::run_session(cfg);
  ASSERT_TRUE(r.completed) << mss;
  EXPECT_EQ(r.receiver_stats.bytes_delivered, 100u * 1024u);
  auto rep = core::SenderAnalyzer(tcp::generic_reno()).analyze(r.sender_trace);
  EXPECT_EQ(rep.mss, mss);
  EXPECT_TRUE(rep.violations.empty()) << "mss " << mss;
  EXPECT_EQ(rep.unexplained_retransmissions, 0u) << "mss " << mss;
}

INSTANTIATE_TEST_SUITE_P(Sizes, MssSweep, ::testing::Values(256u, 536u, 1024u, 1460u));

}  // namespace
}  // namespace tcpanaly
