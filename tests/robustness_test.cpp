// Robustness: every analysis entry point must terminate without crashing
// on arbitrary, adversarial, or mangled input -- truncated traces,
// shuffled records, duplicated records, corrupted header fields, traces
// with no handshake, and fully random record soup. Findings may be
// arbitrary; termination and memory-safety are the contract.
#include <gtest/gtest.h>

#include "core/analyze.hpp"
#include "core/clock_pair.hpp"
#include "core/summary.hpp"
#include "tcp/profiles.hpp"
#include "tcp/session.hpp"
#include "util/rng.hpp"

namespace tcpanaly {
namespace {

trace::Trace base_trace(std::uint64_t seed) {
  tcp::SessionConfig cfg = tcp::default_session();
  cfg.sender_profile = tcp::generic_reno();
  cfg.receiver_profile = cfg.sender_profile;
  cfg.fwd_path.loss_prob = 0.02;
  cfg.sender.transfer_bytes = 24 * 1024;
  cfg.seed = seed;
  return tcp::run_session(cfg).sender_trace;
}

void analyze_everything(const trace::Trace& tr) {
  (void)core::calibrate(tr);
  (void)core::summarize(tr);
  for (const auto& profile :
       {tcp::generic_reno(), *tcp::find_profile("Linux 1.0"),
        *tcp::find_profile("Solaris 2.4")}) {
    (void)core::SenderAnalyzer(profile).analyze(tr);
    (void)core::ReceiverAnalyzer(profile).analyze(tr);
    (void)core::infer_drops_from_model(tr, profile);
  }
}

class MangleSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MangleSweep, TruncatedPrefixesAnalyzable) {
  trace::Trace tr = base_trace(GetParam());
  for (std::size_t keep : {0u, 1u, 2u, 5u, 17u}) {
    trace::Trace cut(tr.meta());
    for (std::size_t i = 0; i < std::min(keep, tr.size()); ++i) cut.push_back(tr[i]);
    analyze_everything(cut);
  }
  SUCCEED();
}

TEST_P(MangleSweep, ShuffledRecordsTerminate) {
  trace::Trace tr = base_trace(GetParam());
  util::Rng rng(GetParam() * 7919 + 1);
  // Fisher-Yates shuffle: destroys all causal order.
  for (std::size_t i = tr.size(); i > 1; --i) {
    const std::size_t j = rng.next_below(i);
    std::swap(tr[i - 1], tr[j]);
  }
  analyze_everything(tr);
  SUCCEED();
}

TEST_P(MangleSweep, FieldCorruptionTerminates) {
  trace::Trace tr = base_trace(GetParam());
  util::Rng rng(GetParam() * 104729 + 3);
  for (int hits = 0; hits < 40; ++hits) {
    auto& rec = tr[rng.next_below(tr.size())];
    switch (rng.next_below(6)) {
      case 0: rec.tcp.seq = static_cast<trace::SeqNum>(rng.next_u64()); break;
      case 1: rec.tcp.ack = static_cast<trace::SeqNum>(rng.next_u64()); break;
      case 2: rec.tcp.window = static_cast<std::uint32_t>(rng.next_below(1 << 20)); break;
      case 3: rec.tcp.payload_len = static_cast<std::uint32_t>(rng.next_below(3000)); break;
      case 4: rec.timestamp = util::TimePoint(
                  static_cast<std::int64_t>(rng.next_below(10'000'000))); break;
      case 5:
        rec.tcp.flags.syn = rng.chance(0.5);
        rec.tcp.flags.fin = rng.chance(0.5);
        rec.tcp.flags.rst = rng.chance(0.5);
        break;
    }
  }
  analyze_everything(tr);
  SUCCEED();
}

TEST_P(MangleSweep, RandomRecordSoupTerminates) {
  util::Rng rng(GetParam() * 31 + 17);
  trace::Trace tr;
  tr.meta().local = {0x0a000001, 1000};
  tr.meta().remote = {0x0a000002, 2000};
  tr.meta().role = GetParam() % 2 ? trace::LocalRole::kSender : trace::LocalRole::kReceiver;
  for (int i = 0; i < 300; ++i) {
    trace::PacketRecord rec;
    rec.timestamp = util::TimePoint(static_cast<std::int64_t>(rng.next_below(5'000'000)));
    const bool from_local = rng.chance(0.5);
    rec.src = from_local ? tr.meta().local : tr.meta().remote;
    rec.dst = from_local ? tr.meta().remote : tr.meta().local;
    rec.tcp.seq = static_cast<trace::SeqNum>(rng.next_u64());
    rec.tcp.ack = static_cast<trace::SeqNum>(rng.next_u64());
    rec.tcp.flags.ack = rng.chance(0.8);
    rec.tcp.flags.syn = rng.chance(0.05);
    rec.tcp.flags.fin = rng.chance(0.05);
    rec.tcp.payload_len = static_cast<std::uint32_t>(rng.next_below(1500));
    rec.tcp.window = static_cast<std::uint32_t>(rng.next_below(1 << 16));
    tr.push_back(rec);
  }
  analyze_everything(tr);
  SUCCEED();
}

TEST_P(MangleSweep, FullMatchOnMangledTraceTerminates) {
  trace::Trace tr = base_trace(GetParam());
  util::Rng rng(GetParam() + 5);
  // Duplicate a slice and splice it back in, then sort by (corrupted)
  // timestamps: plausible filter chaos.
  const std::size_t n = tr.size();
  for (std::size_t i = 0; i < n / 4; ++i) tr.push_back(tr[rng.next_below(n)]);
  tr.stable_sort_by_timestamp();
  auto analysis = core::analyze_trace(tr);
  EXPECT_EQ(analysis.match.fits.size(), tcp::all_profiles().size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MangleSweep, ::testing::Values(1, 2, 3, 4, 5));

TEST(Robustness, ClockPairOnMismatchedTraces) {
  // Two traces from DIFFERENT connections: pairing should find little and
  // never crash.
  auto a = base_trace(10);
  auto b = base_trace(11);
  trace::Trace receiver_like(b.meta());
  receiver_like.meta().role = trace::LocalRole::kReceiver;
  for (const auto& rec : b.records()) receiver_like.push_back(rec);
  (void)core::compare_clocks(a, receiver_like);
  SUCCEED();
}

}  // namespace
}  // namespace tcpanaly
