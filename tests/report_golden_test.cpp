// Golden-file test for the analysis document: a fixed seeded session run
// through the full pipeline must serialize byte-for-byte like the
// checked-in tests/golden/analysis_report.json, after scrubbing the two
// machine-dependent elements (the timings section and per-candidate
// wall_us). Everything else -- calibration detail, summary statistics,
// conformance verdicts, the fit table, the best fit's full report -- is
// deterministic by construction, and this test is what holds the schema
// stability promise to account.
//
// Regenerating after an intentional schema change:
//   TCPANALY_REGEN_GOLDEN=1 ./report_golden_test
// then review the diff and bump report::kSchemaVersion if any existing
// field changed shape or meaning.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "corpus/corpus.hpp"
#include "report/report.hpp"
#include "tcp/profiles.hpp"
#include "tcp/session.hpp"

#ifndef TCPANALY_GOLDEN_DIR
#error "TCPANALY_GOLDEN_DIR must point at tests/golden"
#endif

namespace tcpanaly {
namespace {

using report::Json;

// Deep copy without the keys whose values depend on the machine's clock.
Json scrub(const Json& j) {
  if (j.is_object()) {
    Json out = Json::object();
    for (const auto& [key, value] : j.members())
      if (key != "timings" && key != "wall_us") out.set(key, scrub(value));
    return out;
  }
  if (j.is_array()) {
    Json out = Json::array();
    for (const auto& item : j.items()) out.push_back(scrub(item));
    return out;
  }
  return j;
}

// The fixed scenario behind the golden file. Mild loss so the document
// exercises retransmission, calibration, and penalty machinery rather
// than an all-zeros happy path.
tcp::SessionResult golden_session() {
  corpus::ScenarioParams params;
  params.loss_prob = 0.01;
  params.one_way_delay = util::Duration::millis(20);
  params.rate_bytes_per_sec = 1'000'000.0;
  params.transfer_bytes = 30'000;
  params.seed = 7;
  auto reno = tcp::find_profile("Generic Reno");
  EXPECT_TRUE(reno.has_value());
  return tcp::run_session(corpus::make_session(*reno, params));
}

std::vector<tcp::TcpProfile> golden_candidates() {
  return {*tcp::find_profile("Generic Reno"), *tcp::find_profile("Generic Tahoe"),
          *tcp::find_profile("Linux 1.0")};
}

report::AnalysisReport analyze_golden_trace(const trace::Trace& trace,
                                            const std::string& label) {
  report::AnalysisReport doc;
  doc.trace.file = label;
  doc.trace.records = trace.size();
  doc.trace.local = trace.meta().local.to_string();
  doc.trace.remote = trace.meta().remote.to_string();
  doc.trace.receiver_side = trace.meta().role == trace::LocalRole::kReceiver;
  doc.trace.truth = "Generic Reno";
  report::run_analysis(doc, trace, golden_candidates());
  return doc;
}

TEST(ReportGoldenTest, AnalysisDocumentMatchesCheckedInGolden) {
  const auto session = golden_session();
  const auto doc = analyze_golden_trace(session.sender_trace, "golden/generic_reno_snd");

  // Every emitted form must re-parse with the in-tree parser and compare
  // equal -- pretty and compact alike.
  Json emitted = doc.to_json();
  EXPECT_EQ(Json::parse(emitted.dump(2)), emitted);
  EXPECT_EQ(Json::parse(emitted.dump()), emitted);

  // The timings section must be present and non-empty before scrubbing;
  // "non-empty per-stage timings" is part of the schema contract.
  const Json* timings = emitted.find("timings");
  ASSERT_NE(timings, nullptr);
  ASSERT_NE(timings->find("stages"), nullptr);
  EXPECT_FALSE(timings->find("stages")->items().empty());
  for (const auto& stage : timings->find("stages")->items())
    EXPECT_GT(stage.find("wall_us")->as_int(), 0) << stage.dump();

  const std::string actual = scrub(emitted).dump(2) + "\n";

  const std::string golden_path = std::string(TCPANALY_GOLDEN_DIR) + "/analysis_report.json";
  if (std::getenv("TCPANALY_REGEN_GOLDEN")) {
    std::ofstream out(golden_path);
    out << actual;
    ASSERT_TRUE(out.good()) << "failed to write " << golden_path;
    GTEST_SKIP() << "regenerated " << golden_path;
  }

  std::ifstream in(golden_path);
  ASSERT_TRUE(in.good()) << golden_path
                         << " missing; run with TCPANALY_REGEN_GOLDEN=1 to create it";
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string golden = buf.str();

  // Byte-for-byte first (catches formatting drift), then structurally for
  // a readable failure message.
  EXPECT_EQ(Json::parse(actual), Json::parse(golden));
  EXPECT_EQ(actual, golden);
}

TEST(ReportGoldenTest, ReceiverSideDocumentRoundTrips) {
  // No golden file for the receiver side -- just the invariants: header,
  // truth, non-empty timings, and parser round-trip at both indents.
  const auto session = golden_session();
  const auto doc = analyze_golden_trace(session.receiver_trace, "golden/generic_reno_rcv");
  Json emitted = doc.to_json();
  EXPECT_EQ(Json::parse(emitted.dump(2)), emitted);
  EXPECT_EQ(Json::parse(emitted.dump()), emitted);
  EXPECT_EQ(emitted.find("schema_version")->as_int(), report::kSchemaVersion);
  EXPECT_EQ(emitted.find("type")->as_string(), "analysis");
  ASSERT_NE(emitted.find("receiver_analysis"), nullptr);
  EXPECT_EQ(emitted.find("sender_analysis"), nullptr);
  EXPECT_FALSE(emitted.find("timings")->find("stages")->items().empty());
}

TEST(ReportGoldenTest, BatchDocumentsRoundTrip) {
  report::BatchTraceRecord row;
  row.trace.file = "x_snd.pcap";
  row.trace.records = 12;
  row.trace.truth = "Generic Reno";
  row.trustworthy = true;
  row.best_name = "Generic Reno";
  row.best_fit = "close";
  row.best_penalty = 0.25;
  row.identified = true;
  row.timings.add("load", util::Duration::micros(10));
  Json row_json = row.to_json();
  EXPECT_EQ(Json::parse(row_json.dump()), row_json);
  EXPECT_EQ(row_json.find("type")->as_string(), "trace");
  EXPECT_EQ(row_json.find("error"), nullptr);

  report::BatchTraceRecord failed;
  failed.trace.file = "bad.pcap";
  failed.error = "not a pcap file";
  Json failed_json = failed.to_json();
  EXPECT_EQ(Json::parse(failed_json.dump()), failed_json);
  EXPECT_EQ(failed_json.find("error")->as_string(), "not a pcap file");
  EXPECT_EQ(failed_json.find("best"), nullptr);

  report::BatchAggregate agg;
  agg.traces_analyzed = 5;
  agg.with_truth = 5;
  agg.identified = 4;
  agg.confused = 1;
  agg.failed = 0;
  agg.workers = 2;
  agg.timings.add("scan", util::Duration::micros(3));
  Json agg_json = agg.to_json();
  EXPECT_EQ(Json::parse(agg_json.dump()), agg_json);
  EXPECT_EQ(agg_json.find("type")->as_string(), "aggregate");
  EXPECT_EQ(agg_json.find("identified")->as_int(), 4);
}

}  // namespace
}  // namespace tcpanaly
