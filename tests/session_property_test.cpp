// Session-level conservation and consistency properties, swept over
// profiles and path conditions: packets are never created or destroyed
// except by the configured mechanisms, traces agree with endpoint
// statistics, and completed transfers deliver exactly the payload.
#include <gtest/gtest.h>

#include <tuple>

#include "tcp/profiles.hpp"
#include "tcp/session.hpp"

namespace tcpanaly {
namespace {

struct Cell {
  tcp::TcpProfile profile;
  double loss;
  std::uint64_t seed;
};

std::vector<Cell> cells() {
  std::vector<Cell> out;
  for (const char* name : {"Generic Reno", "Generic Tahoe", "Linux 1.0", "Solaris 2.4",
                           "BSDI", "Trumpet/Winsock"}) {
    for (double loss : {0.0, 0.03}) {
      out.push_back({*tcp::find_profile(name), loss, 7});
    }
  }
  return out;
}

class SessionProperties : public ::testing::TestWithParam<Cell> {};

TEST_P(SessionProperties, ConservationAndConsistency) {
  const Cell& cell = GetParam();
  tcp::SessionConfig cfg = tcp::default_session();
  cfg.sender_profile = cell.profile;
  cfg.receiver_profile = cell.profile;
  cfg.fwd_path.loss_prob = cell.loss;
  cfg.sender.transfer_bytes = 48 * 1024;
  cfg.seed = cell.seed;
  auto r = tcp::run_session(cfg);
  ASSERT_TRUE(r.completed) << cell.profile.name;

  // 1. Exact delivery: the application got the payload, once.
  EXPECT_EQ(r.receiver_stats.bytes_delivered, 48u * 1024u);
  EXPECT_EQ(r.receiver_trace.unique_payload_bytes(trace::Direction::kToLocal),
            48u * 1024u);

  // 2. Trace/statistics agreement (clean filters): every data packet the
  // sender counted appears in its trace exactly once.
  std::size_t outbound_data = 0;
  for (const auto& rec : r.sender_trace.records())
    if (r.sender_trace.is_from_local(rec) && rec.tcp.payload_len > 0) ++outbound_data;
  EXPECT_EQ(outbound_data, r.sender_stats.data_packets);

  // 3. Conservation across the forward path: the receiver's trace shows
  // exactly the packets that survived the network.
  std::size_t arrived_data = 0;
  for (const auto& rec : r.receiver_trace.records())
    if (!r.receiver_trace.is_from_local(rec) && rec.tcp.payload_len > 0) ++arrived_data;
  EXPECT_EQ(arrived_data + r.fwd_network_drops,
            r.sender_stats.data_packets + /*SYN|handshake w/o payload*/ 0u)
      << cell.profile.name;

  // 4. Retransmission accounting: data bytes sent = payload + retransmitted.
  std::uint64_t sent_bytes = 0;
  for (const auto& rec : r.sender_trace.records())
    if (r.sender_trace.is_from_local(rec)) sent_bytes += rec.tcp.payload_len;
  EXPECT_GE(sent_bytes, 48u * 1024u);
  EXPECT_EQ(r.sender_trace.unique_payload_bytes(trace::Direction::kFromLocal),
            48u * 1024u);

  // 5. No spontaneous duplication on a dup-free path: the receiver's
  // duplicate bytes are bounded by what was retransmitted.
  EXPECT_LE(r.receiver_stats.duplicate_data_bytes, sent_bytes - 48u * 1024u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SessionProperties, ::testing::ValuesIn(cells()),
    [](const ::testing::TestParamInfo<Cell>& info) {
      std::string name = info.param.profile.name;
      for (char& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return name + (info.param.loss > 0 ? "_lossy" : "_clean");
    });

TEST(SessionProperties, TimestampsNonNegativeAndBounded) {
  tcp::SessionConfig cfg = tcp::default_session();
  cfg.sender_profile = tcp::generic_reno();
  cfg.receiver_profile = cfg.sender_profile;
  cfg.fwd_path.loss_prob = 0.05;
  cfg.seed = 2;
  auto r = tcp::run_session(cfg);
  for (const auto* tr : {&r.sender_trace, &r.receiver_trace}) {
    for (const auto& rec : tr->records()) {
      EXPECT_GE(rec.timestamp.count(), 0);
      EXPECT_LT(rec.timestamp.count(), cfg.time_limit.count());
    }
  }
}

TEST(SessionProperties, GroundTruthWireTimesPrecedeOrEqualRecords) {
  // Outbound records are stamped at hand-off (<= wire time); inbound at
  // arrival (== wire time). Clean clocks: record time <= truth for
  // outbound, == for inbound.
  tcp::SessionConfig cfg = tcp::default_session();
  cfg.sender_profile = tcp::generic_reno();
  cfg.receiver_profile = cfg.sender_profile;
  auto r = tcp::run_session(cfg);
  for (const auto& rec : r.sender_trace.records()) {
    ASSERT_TRUE(rec.truth_wire_time_known);
    if (r.sender_trace.is_from_local(rec)) {
      EXPECT_LE(rec.timestamp, rec.truth_wire_time);
    } else {
      EXPECT_EQ(rec.timestamp, rec.truth_wire_time);
    }
  }
}

}  // namespace
}  // namespace tcpanaly
