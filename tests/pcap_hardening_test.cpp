// Regression tests for the trace-ingestion hardening: the three parser
// bugs the fuzz harness was built around (cap_len-driven allocation, the
// pcapng EPB 32-bit bound wrap, the tsresol decimal-exponent overflow),
// the ParseLimits resource ceilings, and the pcapng writer round trip.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "report/json.hpp"
#include "tcp/session.hpp"
#include "trace/pcap_io.hpp"
#include "util/parse_limits.hpp"

namespace tcpanaly::trace {
namespace {

using Bytes = std::vector<std::uint8_t>;

void put32(Bytes& b, std::uint32_t v) {
  b.push_back(static_cast<std::uint8_t>(v & 0xff));
  b.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
  b.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
  b.push_back(static_cast<std::uint8_t>((v >> 24) & 0xff));
}

void put16(Bytes& b, std::uint16_t v) {
  b.push_back(static_cast<std::uint8_t>(v & 0xff));
  b.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
}

Bytes pcap_header(std::uint32_t snaplen) {
  Bytes b;
  put32(b, 0xa1b2c3d4);
  put16(b, 2);
  put16(b, 4);
  put32(b, 0);
  put32(b, 0);
  put32(b, snaplen);
  put32(b, 1);  // Ethernet
  return b;
}

void pcapng_shb(Bytes& b) {
  put32(b, 0x0a0d0d0a);
  put32(b, 28);
  put32(b, 0x1a2b3c4d);
  put16(b, 1);
  put16(b, 0);
  put32(b, 0xffffffff);
  put32(b, 0xffffffff);
  put32(b, 28);
}

void pcapng_idb(Bytes& b, bool with_tsresol, std::uint8_t tsresol_raw) {
  const std::uint32_t total = with_tsresol ? 32 : 24;
  put32(b, 1);
  put32(b, total);
  put16(b, 1);  // Ethernet
  put16(b, 0);
  put32(b, 65535);
  if (with_tsresol) {
    put16(b, 9);  // if_tsresol
    put16(b, 1);
    b.push_back(tsresol_raw);
    b.push_back(0);
    b.push_back(0);
    b.push_back(0);
    put16(b, 0);  // opt_endofopt
    put16(b, 0);
  }
  put32(b, total);
}

PcapReadResult parse_pcap(const Bytes& bytes,
                          const util::ParseLimits& limits = {}) {
  std::istringstream in(std::string(bytes.begin(), bytes.end()));
  return read_pcap(in, true, limits);
}

PcapReadResult parse_pcapng(const Bytes& bytes,
                            const util::ParseLimits& limits = {}) {
  std::istringstream in(std::string(bytes.begin(), bytes.end()));
  return read_pcapng(in, true, limits);
}

Trace session_trace() {
  tcp::SessionConfig cfg = tcp::default_session();
  cfg.sender.transfer_bytes = 4 * 1024;
  cfg.seed = 3;
  return tcp::run_session(cfg).sender_trace;
}

Bytes pcap_bytes(const Trace& tr) {
  std::ostringstream out;
  write_pcap(out, tr);
  const std::string s = out.str();
  return Bytes(s.begin(), s.end());
}

Bytes pcapng_bytes(const Trace& tr, std::uint8_t tsresol_raw) {
  std::ostringstream out;
  PcapngWriteOptions opts;
  opts.tsresol_raw = tsresol_raw;
  write_pcapng(out, tr, opts);
  const std::string s = out.str();
  return Bytes(s.begin(), s.end());
}

// ------------------------------------------- bug 1: cap_len-driven alloc

// A record header claiming a ~4 GB frame must be rejected up front, not
// handed to the buffer resize. (Before the fix, read_bytes resized to
// whatever cap_len said.)
TEST(PcapHardening, CaplenLieRejectedBeforeAllocation) {
  Bytes b = pcap_header(65535);
  put32(b, 800000000);   // ts_sec
  put32(b, 0);           // ts_usec
  put32(b, 0xffffffff);  // cap_len: the lie
  put32(b, 0xffffffff);  // orig_len
  try {
    parse_pcap(b);
    FAIL() << "cap_len lie accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("exceeds record-size limit"),
              std::string::npos)
        << e.what();
  }
}

// cap_len above the file's own declared snaplen is a lie even when it is
// below the global record ceiling.
TEST(PcapHardening, CaplenAboveSnaplenRejected) {
  Bytes b = pcap_header(68);
  put32(b, 800000000);
  put32(b, 0);
  put32(b, 1000);  // > snaplen 68, < any global limit
  put32(b, 1000);
  b.insert(b.end(), 1000, 0);
  try {
    parse_pcap(b);
    FAIL() << "snaplen violation accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("snaplen"), std::string::npos)
        << e.what();
  }
}

// A large-but-legal cap_len on a file that ends early must fail with a
// clean error from the chunked reader, not a 16 MB pre-allocation.
TEST(PcapHardening, TruncatedFrameRejectedCleanly) {
  Bytes b = pcap_header(0x1000000);
  put32(b, 800000000);
  put32(b, 0);
  put32(b, 0x100000);  // claims 1 MB...
  put32(b, 0x100000);
  b.insert(b.end(), 64, 0xab);  // ...delivers 64 bytes
  EXPECT_THROW(parse_pcap(b), std::runtime_error);
}

// ----------------------------------------- bug 2: pcapng EPB bound wrap

// cap_len = 0xFFFFFFF0 made the old 32-bit check `v.size() < 20 + cap_len`
// wrap to `v.size() < 4`, pass, and hand an out-of-range subspan to the
// frame decoder (UB). The fixed check compares in size_t.
TEST(PcapHardening, EpbCaplenWrapRejected) {
  Bytes b;
  pcapng_shb(b);
  pcapng_idb(b, false, 0);
  put32(b, 6);           // EPB
  put32(b, 40);          // total length: 20-byte fixed part + 8 data bytes
  put32(b, 0);           // interface
  put32(b, 0);           // ts_hi
  put32(b, 0);           // ts_lo
  put32(b, 0xfffffff0);  // cap_len: wraps the 32-bit bound check
  put32(b, 8);           // orig_len
  for (int i = 0; i < 8; ++i) b.push_back(0x5a);
  put32(b, 40);
  EXPECT_THROW(parse_pcapng(b), std::runtime_error);
}

// The same wrap applied to values just past the block edge (no wrap, a
// plain off-by-a-little lie) must also be caught.
TEST(PcapHardening, EpbCaplenPastBlockEdgeRejected) {
  Bytes b;
  pcapng_shb(b);
  pcapng_idb(b, false, 0);
  put32(b, 6);
  put32(b, 40);
  put32(b, 0);
  put32(b, 0);
  put32(b, 0);
  put32(b, 9);  // one byte more than the 8 the block carries
  put32(b, 9);
  for (int i = 0; i < 8; ++i) b.push_back(0x5a);
  put32(b, 40);
  EXPECT_THROW(parse_pcapng(b), std::runtime_error);
}

// --------------------------------------- bug 3: tsresol decimal overflow

// A decimal exponent of 20 used to be accepted (the range check allowed
// 20..63) and then silently computed as 10^19 ticks/sec. The fixed parser
// rejects it and falls back to the microsecond default, so tick values
// are interpreted as microseconds.
TEST(PcapHardening, TsresolDecimal20FallsBackToMicroseconds) {
  const Trace tr = session_trace();
  const Bytes good = pcapng_bytes(tr, 6);  // explicit microseconds

  // Patch the if_tsresol option payload (the byte after the 09 00 01 00
  // option header) from 6 to 20.
  Bytes patched = good;
  bool found = false;
  for (std::size_t i = 0; i + 4 < patched.size(); ++i) {
    if (patched[i] == 0x09 && patched[i + 1] == 0x00 && patched[i + 2] == 0x01 &&
        patched[i + 3] == 0x00 && patched[i + 4] == 6) {
      patched[i + 4] = 20;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found) << "if_tsresol option not found in written pcapng";

  const PcapReadResult a = parse_pcapng(good);
  const PcapReadResult b = parse_pcapng(patched);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  ASSERT_GT(a.trace.size(), 0u);
  for (std::size_t i = 0; i < a.trace.size(); ++i)
    EXPECT_EQ(a.trace[i].timestamp, b.trace[i].timestamp) << "record " << i;
}

// Power-of-two resolutions (high bit set) must be honored, not rejected:
// 2^-20 second ticks land within a microsecond of the original stamps.
TEST(PcapHardening, TsresolPow2RoundTrips) {
  const Trace tr = session_trace();
  const PcapReadResult us = parse_pcapng(pcapng_bytes(tr, 6));
  const PcapReadResult p2 = parse_pcapng(pcapng_bytes(tr, 0x94));
  ASSERT_EQ(us.trace.size(), p2.trace.size());
  ASSERT_GT(us.trace.size(), 0u);
  for (std::size_t i = 0; i < us.trace.size(); ++i) {
    const std::int64_t delta = (us.trace[i].timestamp - p2.trace[i].timestamp).count();
    EXPECT_LE(delta < 0 ? -delta : delta, 2) << "record " << i;
  }
}

// --------------------------------------------------- ParseLimits budgets

TEST(PcapHardening, RecordCountLimitEnforced) {
  const Bytes b = pcap_bytes(session_trace());
  util::ParseLimits limits;
  limits.max_records = 3;
  try {
    parse_pcap(b, limits);
    FAIL() << "record count limit not enforced";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("record count"), std::string::npos)
        << e.what();
  }
}

TEST(PcapHardening, TotalByteBudgetEnforced) {
  const Bytes b = pcap_bytes(session_trace());
  util::ParseLimits limits;
  limits.max_total_bytes = 512;
  EXPECT_THROW(parse_pcap(b, limits), std::runtime_error);
}

TEST(PcapHardening, PcapngBlockBudgetsEnforced) {
  const Bytes b = pcapng_bytes(session_trace(), 6);
  util::ParseLimits count_limits;
  count_limits.max_records = 3;
  EXPECT_THROW(parse_pcapng(b, count_limits), std::runtime_error);
  util::ParseLimits byte_limits;
  byte_limits.max_total_bytes = 512;
  EXPECT_THROW(parse_pcapng(b, byte_limits), std::runtime_error);
}

TEST(PcapHardening, JsonDepthLimitEnforced) {
  std::string deep;
  for (int i = 0; i < 50; ++i) deep += '[';
  deep += '1';
  for (int i = 0; i < 50; ++i) deep += ']';
  util::ParseLimits limits;
  limits.max_depth = 16;
  EXPECT_THROW(report::Json::parse(deep, limits), std::runtime_error);
  // The default ceiling still admits it.
  EXPECT_NO_THROW(report::Json::parse(deep));
}

TEST(PcapHardening, JsonSizeLimitEnforced) {
  util::ParseLimits limits;
  limits.max_total_bytes = 16;
  EXPECT_THROW(report::Json::parse(std::string(64, ' ') + "1", limits),
               std::runtime_error);
}

// -------------------------------------------------- pcapng writer round

// The pcapng writer exists for the fuzz seeds; it must agree byte-for-
// byte (at the record level) with what the classic pcap path produces.
TEST(PcapHardening, PcapngWriterMatchesPcapPath) {
  const Trace tr = session_trace();
  const PcapReadResult from_pcap = parse_pcap(pcap_bytes(tr));
  const PcapReadResult from_ng = parse_pcapng(pcapng_bytes(tr, 6));
  ASSERT_EQ(from_pcap.trace.size(), from_ng.trace.size());
  ASSERT_GT(from_pcap.trace.size(), 0u);
  for (std::size_t i = 0; i < from_pcap.trace.size(); ++i) {
    const auto& a = from_pcap.trace[i];
    const auto& b = from_ng.trace[i];
    EXPECT_EQ(a.timestamp, b.timestamp) << "record " << i;
    EXPECT_EQ(a.src, b.src) << "record " << i;
    EXPECT_EQ(a.dst, b.dst) << "record " << i;
    EXPECT_EQ(a.tcp, b.tcp) << "record " << i;
  }
}

}  // namespace
}  // namespace tcpanaly::trace
