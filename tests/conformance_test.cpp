// Conformance checker tests: each implementation's known violations must
// show up as FAILs under the conditions that exercise them, and compliant
// stacks must pass cleanly.
#include <gtest/gtest.h>

#include "core/conformance.hpp"
#include "tcp/profiles.hpp"
#include "tcp/session.hpp"

namespace tcpanaly::core {
namespace {

Verdict verdict_of(const ConformanceReport& rep, const std::string& needle) {
  for (const auto& c : rep.results)
    if (std::string(c.requirement->title).find(needle) != std::string::npos)
      return c.verdict;
  ADD_FAILURE() << "no requirement whose title matches '" << needle << "'";
  return Verdict::kNotExercised;
}

tcp::SessionResult run(const tcp::TcpProfile& impl,
                       std::function<void(tcp::SessionConfig&)> mutate = {},
                       std::uint64_t seed = 1) {
  tcp::SessionConfig cfg = tcp::default_session();
  cfg.sender_profile = impl;
  cfg.receiver_profile = impl;
  cfg.seed = seed;
  if (mutate) mutate(cfg);
  return tcp::run_session(cfg);
}

TEST(Conformance, CleanRenoSenderPasses) {
  auto r = run(tcp::generic_reno(), [](tcp::SessionConfig& c) {
    c.fwd_path.loss_prob = 0.02;
  });
  auto rep = check_conformance(r.sender_trace);
  EXPECT_EQ(rep.failures(), 0u) << rep.render();
  EXPECT_EQ(verdict_of(rep, "slow start"), Verdict::kPass);
  EXPECT_EQ(verdict_of(rep, "offered window"), Verdict::kPass);
}

TEST(Conformance, Net3BurstFailsSlowStart) {
  auto r = run(*tcp::find_profile("BSDI"), [](tcp::SessionConfig& c) {
    c.receiver.omit_mss_option = true;
  });
  auto rep = check_conformance(r.sender_trace);
  EXPECT_EQ(verdict_of(rep, "slow start"), Verdict::kFail) << rep.render();
}

TEST(Conformance, TrumpetFailsSlowStart) {
  auto r = run(*tcp::find_profile("Trumpet/Winsock"));
  auto rep = check_conformance(r.sender_trace);
  EXPECT_EQ(verdict_of(rep, "slow start"), Verdict::kFail) << rep.render();
}

TEST(Conformance, SolarisPrematureRetransmissionFails) {
  auto r = run(*tcp::find_profile("Solaris 2.4"), [](tcp::SessionConfig& c) {
    c.fwd_path.prop_delay = util::Duration::millis(340);
    c.rev_path.prop_delay = util::Duration::millis(340);
  });
  auto rep = check_conformance(r.sender_trace);
  EXPECT_EQ(verdict_of(rep, "premature"), Verdict::kFail) << rep.render();
}

TEST(Conformance, BsdTimerPassesPrematureCheckUnderLoss) {
  auto r = run(tcp::generic_reno(),
               [](tcp::SessionConfig& c) { c.fwd_path.loss_prob = 0.03; }, 7);
  auto rep = check_conformance(r.sender_trace);
  const Verdict v = verdict_of(rep, "premature");
  EXPECT_NE(v, Verdict::kFail) << rep.render();
}

TEST(Conformance, LinuxStormFailsRestartFlight) {
  auto r = run(*tcp::find_profile("Linux 1.0"), [](tcp::SessionConfig& c) {
    c.fwd_path.loss_prob = 0.04;
    c.fwd_path.prop_delay = util::Duration::millis(80);
    c.rev_path.prop_delay = util::Duration::millis(80);
  }, 3);
  auto rep = check_conformance(r.sender_trace);
  EXPECT_EQ(verdict_of(rep, "conservative restart"), Verdict::kFail) << rep.render();
}

TEST(Conformance, BackoffExercisedOnDeadPath) {
  // Kill the forward path mid-transfer: repeated timeouts of one segment.
  auto r = run(tcp::generic_reno(), [](tcp::SessionConfig& c) {
    for (std::uint64_t n = 40; n < 400; ++n) c.fwd_path.drop_nth.push_back(n);
    c.time_limit = util::Duration::seconds(120.0);
  });
  auto rep = check_conformance(r.sender_trace);
  EXPECT_EQ(verdict_of(rep, "backs off"), Verdict::kPass) << rep.render();
}

TEST(Conformance, ReceiverPolicyChecks) {
  auto bsd = run(tcp::generic_reno());
  auto rep = check_conformance(bsd.receiver_trace);
  EXPECT_EQ(rep.failures(), 0u) << rep.render();
  EXPECT_EQ(verdict_of(rep, "ack delay"), Verdict::kPass);
  EXPECT_EQ(verdict_of(rep, "every 2 full-sized"), Verdict::kPass);
}

TEST(Conformance, StretchAckBugFailsTwoSegmentRule) {
  tcp::TcpProfile p = *tcp::find_profile("Solaris 2.3");
  p.stretch_ack_every = 1;  // make the 2.3 bug fire constantly
  auto r = run(p);
  auto rep = check_conformance(r.receiver_trace);
  EXPECT_EQ(verdict_of(rep, "every 2 full-sized"), Verdict::kFail) << rep.render();
}

TEST(Conformance, OutOfOrderDupAckCheckExercised) {
  auto r = run(tcp::generic_reno(),
               [](tcp::SessionConfig& c) { c.fwd_path.loss_prob = 0.03; }, 5);
  auto rep = check_conformance(r.receiver_trace);
  EXPECT_EQ(verdict_of(rep, "out-of-order"), Verdict::kPass) << rep.render();
}

TEST(Conformance, CleanShortTraceLeavesChecksUnexercised) {
  tcp::SessionConfig cfg = tcp::default_session();
  cfg.sender_profile = tcp::generic_reno();
  cfg.receiver_profile = cfg.sender_profile;
  auto r = tcp::run_session(cfg);
  auto rep = check_conformance(r.sender_trace);
  EXPECT_EQ(verdict_of(rep, "backs off"), Verdict::kNotExercised);
  EXPECT_EQ(verdict_of(rep, "premature"), Verdict::kNotExercised);
  EXPECT_EQ(rep.failures(), 0u) << rep.render();
}

TEST(Conformance, RenderIncludesVerdicts) {
  auto r = run(tcp::generic_reno());
  auto rep = check_conformance(r.sender_trace);
  const std::string out = rep.render();
  EXPECT_NE(out.find("PASS"), std::string::npos);
  EXPECT_NE(out.find("slow start"), std::string::npos);
}

}  // namespace
}  // namespace tcpanaly::core

namespace tcpanaly::core {
namespace {

TEST(Conformance, RstOnAbandonChecked) {
  auto dead_path = [](tcp::SessionConfig& c) {
    for (std::uint64_t n = 40; n < 400; ++n) c.fwd_path.drop_nth.push_back(n);
    c.sender.max_data_retries = 5;
    c.time_limit = util::Duration::seconds(240.0);
  };
  auto bsd = run(tcp::generic_reno(), dead_path);
  auto rep = check_conformance(bsd.sender_trace);
  EXPECT_EQ(verdict_of(rep, "RST"), Verdict::kPass) << rep.render();

  auto trumpet = run(*tcp::find_profile("Trumpet/Winsock"), dead_path);
  auto trep = check_conformance(trumpet.sender_trace);
  EXPECT_EQ(verdict_of(trep, "RST"), Verdict::kFail) << trep.render();
}

TEST(Conformance, RstCheckNotExercisedOnCleanTransfer) {
  auto r = run(tcp::generic_reno());
  auto rep = check_conformance(r.sender_trace);
  EXPECT_EQ(verdict_of(rep, "RST"), Verdict::kNotExercised);
}

}  // namespace
}  // namespace tcpanaly::core
