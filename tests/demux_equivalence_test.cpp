// Flow-demultiplexing equivalence and edge cases:
//
//   * a single-flow capture routed through FlowDemux reaches
//     analyze_capture_stream's exact calibration and match results (the
//     demux changes nothing for the traces the paper's pipeline was built
//     for);
//   * an interleaved N-flow capture yields per-flow analyses identical to
//     analyzing each flow's records in isolation;
//   * a 4-tuple that reappears after its flow finalized (idle eviction)
//     produces two flow results, each matching its isolated analysis;
//   * FlowKey canonicalization handles loopback (shared ip), symmetric
//     ports, the pair-sort distinctness property, and self-connections;
//   * EndpointTally's direction vote is robust to loopback endpoints and
//     stray third-party records;
//   * non-connection traffic (SYN scans, payload-less handshakes,
//     mid-stream starts, degenerate flows) is classified unanalyzable,
//     with the accounting invariant flows_seen == analyzed + unanalyzable;
//   * scan_capture_files dedupes symlinked / case-folded row-key
//     collisions deterministically.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/flow_demux.hpp"
#include "core/json_convert.hpp"
#include "core/stream_analysis.hpp"
#include "corpus/corpus.hpp"
#include "corpus/scan.hpp"
#include "netsim/mix.hpp"
#include "tcp/profiles.hpp"
#include "tcp/session.hpp"
#include "trace/flow.hpp"
#include "trace/record_source.hpp"

namespace tcpanaly::core {
namespace {

using trace::Endpoint;
using trace::FlowKey;
using trace::PacketRecord;
using trace::Trace;
using util::Duration;
using util::TimePoint;

std::vector<tcp::TcpProfile> candidates() {
  return {*tcp::find_profile("Generic Reno"), *tcp::find_profile("Generic Tahoe"),
          *tcp::find_profile("Linux 1.0")};
}

FlowDemuxOptions demux_options(bool local_is_sender = true) {
  FlowDemuxOptions opts;
  opts.local_is_sender = local_is_sender;
  opts.analyze.match.jobs = 1;
  opts.candidates = candidates();
  return opts;
}

StreamedTraceAnalysis stream_analyze(const Trace& tr, bool local_is_sender) {
  trace::InMemorySource source(tr);
  AnalyzeOptions aopts;
  aopts.match.jobs = 1;
  return analyze_capture_stream(source, local_is_sender, candidates(), aopts);
}

void expect_same_analysis(const TraceAnalysis& a, const TraceAnalysis& b,
                          const std::string& label) {
  EXPECT_EQ(to_json(a.calibration).dump(), to_json(b.calibration).dump()) << label;
  ASSERT_EQ(a.match.fits.size(), b.match.fits.size()) << label;
  for (std::size_t i = 0; i < b.match.fits.size(); ++i) {
    EXPECT_EQ(a.match.fits[i].profile.name, b.match.fits[i].profile.name)
        << label << " fit " << i;
    EXPECT_DOUBLE_EQ(a.match.fits[i].penalty, b.match.fits[i].penalty)
        << label << " fit " << i;
    EXPECT_EQ(a.match.fits[i].fit, b.match.fits[i].fit) << label << " fit " << i;
  }
}

tcp::SessionResult scenario(const char* impl, double loss, std::int64_t delay_ms,
                            std::uint64_t seed, std::uint32_t bytes = 48 * 1024) {
  corpus::ScenarioParams p;
  p.loss_prob = loss;
  p.one_way_delay = Duration::millis(delay_ms);
  p.transfer_bytes = bytes;
  p.seed = seed;
  return tcp::run_session(corpus::make_session(*tcp::find_profile(impl), p));
}

PacketRecord make_record(std::int64_t t_us, Endpoint src, Endpoint dst, bool syn,
                         bool ack_flag, std::uint32_t seq, std::uint32_t ack,
                         std::uint32_t payload) {
  PacketRecord rec;
  rec.timestamp = TimePoint(t_us);
  rec.src = src;
  rec.dst = dst;
  rec.tcp.flags.syn = syn;
  rec.tcp.flags.ack = ack_flag;
  rec.tcp.seq = seq;
  rec.tcp.ack = ack;
  rec.tcp.payload_len = payload;
  rec.tcp.window = 8192;
  return rec;
}

// ------------------------------------------------------------ tentpole (a)

TEST(DemuxEquivalence, SingleFlowCaptureMatchesAnalyzeCaptureStream) {
  const struct {
    const char* impl;
    double loss;
    std::int64_t delay_ms;
    std::uint64_t seed;
  } cells[] = {
      {"Generic Reno", 0.0, 20, 7},
      {"Generic Reno", 0.02, 20, 17},
      {"Generic Tahoe", 0.05, 60, 3},
      {"Linux 1.0", 0.02, 20, 17},
  };
  for (const auto& c : cells) {
    const auto session = scenario(c.impl, c.loss, c.delay_ms, c.seed);
    for (const bool local_is_sender : {true, false}) {
      const Trace& tr = local_is_sender ? session.sender_trace : session.receiver_trace;
      const StreamedTraceAnalysis reference = stream_analyze(tr, local_is_sender);

      trace::InMemorySource source(tr);
      const CaptureFlowAnalysis demuxed =
          analyze_capture_flows(source, demux_options(local_is_sender));

      const std::string label = std::string(c.impl) +
                                (local_is_sender ? " snd" : " rcv") +
                                " seed=" + std::to_string(c.seed);
      ASSERT_EQ(demuxed.flows.size(), 1u) << label;
      const FlowResult& flow = demuxed.flows.front();
      EXPECT_EQ(flow.cls, FlowClass::kAnalyzable) << label;
      EXPECT_EQ(flow.records, tr.size()) << label;
      ASSERT_TRUE(flow.trace) << label;
      EXPECT_EQ(flow.trace->size(), reference.trace->size()) << label;
      EXPECT_EQ(flow.trace->meta().local.to_string(),
                reference.trace->meta().local.to_string())
          << label;
      EXPECT_EQ(flow.trace->meta().remote.to_string(),
                reference.trace->meta().remote.to_string())
          << label;
      expect_same_analysis(flow.analysis, reference.analysis, label);

      EXPECT_EQ(demuxed.stats.flows_seen, 1u) << label;
      EXPECT_EQ(demuxed.stats.flows_analyzed, 1u) << label;
      EXPECT_EQ(demuxed.stats.flows_unanalyzable, 0u) << label;
    }
  }
}

// ------------------------------------------------------------ tentpole (b)

TEST(DemuxEquivalence, InterleavedFlowsMatchIsolatedAnalyses) {
  corpus::FlowMixOptions mopts;
  mopts.flows = 8;
  mopts.spacing = Duration::millis(40);
  mopts.transfer_bytes = 12 * 1024;
  const corpus::FlowMix mix =
      corpus::make_flow_mix(*tcp::find_profile("Generic Reno"), mopts);
  ASSERT_EQ(mix.isolated.size(), mopts.flows);
  ASSERT_GT(mix.capture.size(), 0u);

  trace::InMemorySource source(mix.capture);
  const CaptureFlowAnalysis demuxed = analyze_capture_flows(source, demux_options());
  ASSERT_EQ(demuxed.flows.size(), mopts.flows);
  EXPECT_EQ(demuxed.stats.flows_seen, mopts.flows);
  EXPECT_EQ(demuxed.stats.flows_analyzed, mopts.flows);
  EXPECT_EQ(demuxed.stats.flows_unanalyzable, 0u);
  EXPECT_EQ(demuxed.stats.records, mix.capture.size());

  // Flow results come out in finalization order; the unique client
  // endpoint maps each back to its slice.
  for (const FlowResult& flow : demuxed.flows) {
    std::size_t idx = mopts.flows;
    for (std::size_t i = 0; i < mopts.flows; ++i) {
      if (sim::flow_endpoints(static_cast<std::uint32_t>(i)).local == flow.first_src) {
        idx = i;
        break;
      }
    }
    ASSERT_LT(idx, mopts.flows) << "unknown client " << flow.first_src.to_string();
    const Trace& isolated = mix.isolated[idx];
    const std::string label = "flow " + std::to_string(idx);
    EXPECT_EQ(flow.cls, FlowClass::kAnalyzable) << label;
    EXPECT_EQ(flow.records, isolated.size()) << label;
    const StreamedTraceAnalysis reference = stream_analyze(isolated, true);
    expect_same_analysis(flow.analysis, reference.analysis, label);
  }
}

// ------------------------------------------------------------ tentpole (c)

/// A copy of `tr` with every FIN-bearing record removed, so the demux
/// never sees a close and the flow can only finalize via idle sweep / EOF.
Trace without_fins(const Trace& tr) {
  Trace out{tr.meta()};
  for (const PacketRecord& rec : tr.records())
    if (!rec.tcp.flags.fin) out.push_back(rec);
  return out;
}

TEST(DemuxEquivalence, EvictionThenReappearanceYieldsTwoFlows) {
  // The same 4-tuple carries two connections separated by an idle gap
  // longer than the demux's idle timeout: the first must be swept and the
  // second must start a FRESH flow, each analyzed as if alone. FINs are
  // stripped so the close trigger stays out of the picture.
  const Trace t1 = without_fins(scenario("Generic Reno", 0.0, 20, 7, 12 * 1024).sender_trace);
  const Trace t2 = without_fins(scenario("Generic Tahoe", 0.01, 20, 11, 12 * 1024).sender_trace);
  const sim::FlowEndpoints eps = sim::flow_endpoints(0);

  sim::FlowSlice first{&t1, eps.local, eps.remote, Duration::zero()};
  sim::FlowSlice second{&t2, eps.local, eps.remote, Duration::seconds(400.0)};
  const Trace capture = sim::interleave_flows({first, second});
  const Trace iso1 = sim::interleave_flows({first});
  const Trace iso2 = sim::interleave_flows({second});

  FlowDemuxOptions opts = demux_options();
  opts.idle_timeout = Duration::seconds(60.0);
  trace::InMemorySource source(capture);
  const CaptureFlowAnalysis demuxed = analyze_capture_flows(source, std::move(opts));

  ASSERT_EQ(demuxed.flows.size(), 2u);
  EXPECT_EQ(demuxed.stats.flows_seen, 2u);
  EXPECT_EQ(demuxed.stats.flows_analyzed, 2u);
  EXPECT_EQ(demuxed.stats.evicted_idle, 1u);

  const FlowResult& flow1 = demuxed.flows[0];
  const FlowResult& flow2 = demuxed.flows[1];
  EXPECT_EQ(flow1.serial, 0u);
  EXPECT_EQ(flow2.serial, 1u);
  EXPECT_EQ(flow1.key.to_string(), flow2.key.to_string());
  EXPECT_EQ(flow1.finalized_by, FlowFinalize::kIdle);
  EXPECT_EQ(flow1.records, iso1.size());
  EXPECT_EQ(flow2.records, iso2.size());
  expect_same_analysis(flow1.analysis, stream_analyze(iso1, true).analysis, "first");
  expect_same_analysis(flow2.analysis, stream_analyze(iso2, true).analysis, "second");
}

TEST(DemuxEquivalence, HalfClosedFlowFinalizesAfterLinger) {
  // The receiver's FIN is never recorded in these captures (one-sided
  // close); the sender's acked FIN alone must finalize the flow once it
  // has been quiet for close_linger, without waiting for EOF -- this is
  // what keeps state proportional to concurrent flows on real captures.
  const auto s1 = scenario("Generic Reno", 0.0, 20, 7, 12 * 1024);
  const auto s2 = scenario("Generic Reno", 0.0, 20, 13, 12 * 1024);
  sim::FlowSlice a{&s1.sender_trace, sim::flow_endpoints(0).local,
                   sim::flow_endpoints(0).remote, Duration::zero()};
  sim::FlowSlice b{&s2.sender_trace, sim::flow_endpoints(1).local,
                   sim::flow_endpoints(1).remote, Duration::seconds(30.0)};
  const Trace capture = sim::interleave_flows({a, b});
  const Trace iso_a = sim::interleave_flows({a});

  // Flow A ends (FIN acked) well before flow B starts; B's records carry
  // the watermark past A's linger deadline but nowhere near the 60 s idle
  // timeout, so only the close trigger can explain an early finalization.
  trace::InMemorySource source(capture);
  const CaptureFlowAnalysis demuxed = analyze_capture_flows(source, demux_options());
  ASSERT_EQ(demuxed.flows.size(), 2u);
  EXPECT_EQ(demuxed.stats.closed, 1u);
  EXPECT_EQ(demuxed.stats.evicted_idle, 0u);
  const FlowResult& flow_a = demuxed.flows[0];
  EXPECT_EQ(flow_a.serial, 0u);
  EXPECT_EQ(flow_a.finalized_by, FlowFinalize::kClosed);
  EXPECT_EQ(flow_a.records, iso_a.size());
  expect_same_analysis(flow_a.analysis, stream_analyze(iso_a, true).analysis, "half-closed");
}

// --------------------------------------------------- flow key edge cases

TEST(FlowKey, CanonicalizesBothDirections) {
  const Endpoint a{0x0a000001, 4000};
  const Endpoint b{0x0a000002, 5000};
  EXPECT_EQ(FlowKey::of(a, b), FlowKey::of(b, a));
  EXPECT_EQ(trace::FlowKeyHash{}(FlowKey::of(a, b)),
            trace::FlowKeyHash{}(FlowKey::of(b, a)));
}

TEST(FlowKey, LoopbackSharedIpOrdersByPort) {
  const Endpoint a{0x7f000001, 6000};
  const Endpoint b{0x7f000001, 7000};
  const FlowKey k = FlowKey::of(b, a);
  EXPECT_EQ(k, FlowKey::of(a, b));
  EXPECT_EQ(k.lo.port, 6000);
  EXPECT_EQ(k.hi.port, 7000);
  EXPECT_FALSE(k.degenerate());
}

TEST(FlowKey, SymmetricPortsOrderByIp) {
  const Endpoint a{0x0a000002, 179};
  const Endpoint b{0x0a000001, 179};
  const FlowKey k = FlowKey::of(a, b);
  EXPECT_EQ(k, FlowKey::of(b, a));
  EXPECT_EQ(k.lo.ip, 0x0a000001u);
  EXPECT_FALSE(k.degenerate());
}

TEST(FlowKey, PairSortKeepsCrossedConnectionsDistinct) {
  // (ip1:p1 <-> ip2:p2) and (ip1:p2 <-> ip2:p1) share both the ip multiset
  // and the port multiset; a field-wise sort would collapse them.
  const FlowKey straight = FlowKey::of({0x0a000001, 1111}, {0x0a000002, 2222});
  const FlowKey crossed = FlowKey::of({0x0a000001, 2222}, {0x0a000002, 1111});
  EXPECT_FALSE(straight == crossed);
}

TEST(FlowKey, SelfConnectionIsDegenerate) {
  const Endpoint a{0x7f000001, 8080};
  EXPECT_TRUE(FlowKey::of(a, a).degenerate());
}

// ------------------------------------------------- direction resolution

TEST(EndpointTally, LoopbackEndpointsResolveByPort) {
  const Endpoint a{0x7f000001, 6000};
  const Endpoint b{0x7f000001, 7000};
  trace::EndpointTally tally;
  tally.add(make_record(0, a, b, true, false, 0, 0, 0));
  tally.add(make_record(10, b, a, true, true, 0, 1, 0));
  // Bulk data flows b -> a, so b is the sender even though it was not the
  // first-seen source and shares a's address.
  tally.add(make_record(20, b, a, false, true, 1, 1, 4000));
  tally.add(make_record(30, b, a, false, true, 4001, 1, 4000));
  EXPECT_FALSE(tally.local_is_first_src(/*local_is_sender=*/true));
  EXPECT_TRUE(tally.local_is_first_src(/*local_is_sender=*/false));
}

TEST(EndpointTally, StrayThirdPartyRecordsDoNotVote) {
  const Endpoint a{0x0a000001, 4000};
  const Endpoint b{0x0a000002, 5000};
  const Endpoint c{0x0a000003, 6000};
  trace::EndpointTally tally;
  tally.add(make_record(0, a, b, false, true, 0, 0, 1000));
  // A burst of unrelated traffic used to be credited wholesale to `b`
  // (anything whose src != a), flipping the direction vote.
  for (int i = 0; i < 50; ++i)
    tally.add(make_record(10 + i, c, b, false, true, 0, 0, 1400));
  tally.add(make_record(100, b, a, false, true, 0, 1000, 0));
  EXPECT_TRUE(tally.local_is_first_src(/*local_is_sender=*/true));
}

// --------------------------------------------- non-connection traffic

TEST(DemuxClassification, NonConnectionTrafficIsCountedNotAnalyzed) {
  const Endpoint scanner{0x0a000009, 40000};
  const Endpoint client{0x0a000001, 4000};
  const Endpoint server{0x0a000002, 5000};
  const Endpoint self{0x7f000001, 8080};

  Trace tr{trace::TraceMeta{}};
  // SYN scan: two probes to different ports, no payload ever.
  tr.push_back(make_record(0, scanner, {0x0a000002, 22}, true, false, 0, 0, 0));
  tr.push_back(make_record(10, scanner, {0x0a000002, 23}, true, false, 0, 0, 0));
  // Mid-stream: first observed record carries payload but no SYN.
  tr.push_back(make_record(20, client, server, false, true, 9000, 100, 1400));
  tr.push_back(make_record(30, server, client, false, true, 100, 10400, 0));
  // Payload-less handshake on a separate port: SYN, SYN-ACK, ACK only.
  const Endpoint idle_client{0x0a000001, 4100};
  tr.push_back(make_record(40, idle_client, server, true, false, 0, 0, 0));
  tr.push_back(make_record(50, server, idle_client, true, true, 0, 1, 0));
  tr.push_back(make_record(60, idle_client, server, false, true, 1, 1, 0));
  // Degenerate self-connection.
  tr.push_back(make_record(70, self, self, true, false, 0, 0, 0));

  trace::InMemorySource source(tr);
  const CaptureFlowAnalysis demuxed = analyze_capture_flows(source, demux_options());

  EXPECT_EQ(demuxed.stats.records, tr.size());
  EXPECT_EQ(demuxed.stats.flows_seen, 5u);  // 2 scan probes + 3 others
  EXPECT_EQ(demuxed.stats.flows_analyzed, 0u);
  EXPECT_EQ(demuxed.stats.flows_unanalyzable, 5u);
  EXPECT_EQ(demuxed.stats.syn_scan, 2u);
  EXPECT_EQ(demuxed.stats.mid_stream, 1u);
  EXPECT_EQ(demuxed.stats.no_payload, 1u);
  EXPECT_EQ(demuxed.stats.degenerate, 1u);
  EXPECT_EQ(demuxed.stats.flows_seen,
            demuxed.stats.flows_analyzed + demuxed.stats.flows_unanalyzable);
  for (const FlowResult& flow : demuxed.flows) {
    EXPECT_NE(flow.cls, FlowClass::kAnalyzable) << to_string(flow.cls);
    EXPECT_FALSE(flow.trace) << "unanalyzable flows must not carry an analysis";
  }
}

// --------------------------------------------------------- scan dedupe

TEST(ScanDedupe, SymlinkedDuplicateIsDroppedAndReported) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "tcpanaly_scan_dedupe_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  std::ofstream(dir / "real.pcap") << "not-a-real-capture";
  std::error_code link_ec;
  fs::create_symlink(dir / "real.pcap", dir / "alias.pcap", link_ec);
  if (link_ec) GTEST_SKIP() << "symlinks unsupported here: " << link_ec.message();

  std::error_code ec;
  const corpus::ScanResult scan = corpus::scan_capture_files(dir, false, ec);
  ASSERT_FALSE(ec) << ec.message();
  ASSERT_EQ(scan.files.size(), 1u);
  ASSERT_EQ(scan.collisions.size(), 1u);
  // Sorted order makes the survivor deterministic: "alias.pcap" sorts
  // before "real.pcap".
  EXPECT_EQ(scan.keys[0], "alias.pcap");
  EXPECT_EQ(scan.collisions[0].kept.filename().string(), "alias.pcap");
  EXPECT_EQ(scan.collisions[0].dropped.filename().string(), "real.pcap");
  fs::remove_all(dir);
}

TEST(ScanDedupe, CaseFoldedKeyCollisionIsDroppedAndReported) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "tcpanaly_scan_casefold_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  std::ofstream(dir / "Trace.pcap") << "a";
  std::ofstream(dir / "trace.pcap") << "b";
  if (!fs::exists(dir / "Trace.pcap") || !fs::exists(dir / "trace.pcap") ||
      fs::equivalent(dir / "Trace.pcap", dir / "trace.pcap"))
    GTEST_SKIP() << "filesystem is case-insensitive";

  std::error_code ec;
  const corpus::ScanResult scan = corpus::scan_capture_files(dir, false, ec);
  ASSERT_FALSE(ec) << ec.message();
  ASSERT_EQ(scan.files.size(), 1u);
  ASSERT_EQ(scan.collisions.size(), 1u);
  EXPECT_EQ(scan.keys[0], "Trace.pcap");  // "Trace.pcap" < "trace.pcap"
  fs::remove_all(dir);
}

}  // namespace
}  // namespace tcpanaly::core
