// End-to-end tests for the "minor variations" of paper section 8.3: each
// knob must (a) produce its distinctive on-the-wire behavior and (b) be
// distinguishable by the matcher under conditions that exercise it.
#include <gtest/gtest.h>

#include "core/sender_analyzer.hpp"
#include "tcp/profiles.hpp"
#include "tcp/session.hpp"

namespace tcpanaly {
namespace {

tcp::SessionResult run(const tcp::TcpProfile& impl,
                       std::function<void(tcp::SessionConfig&)> mutate = {},
                       std::uint64_t seed = 1) {
  tcp::SessionConfig cfg = tcp::default_session();
  cfg.sender_profile = impl;
  cfg.receiver_profile = impl;
  cfg.seed = seed;
  if (mutate) mutate(cfg);
  return tcp::run_session(cfg);
}

double penalty_of(const tcp::TcpProfile& candidate, const trace::Trace& tr) {
  core::SenderAnalysisOptions opts;
  opts.infer_source_quench = false;
  return core::SenderAnalyzer(candidate, opts).analyze(tr).penalty();
}

// ---- HP/UX: cwnd initialized from the OFFERED MSS (8.3) ----

TEST(MinorVariations, HpuxInitialCwndFromOfferedMss) {
  // Offer a big MSS but negotiate a small one: HP/UX's first flight is
  // offered/negotiated segments, a plain Reno's is one.
  auto count_first_flight = [](const tcp::SessionResult& r, trace::SeqNum iss) {
    std::size_t n = 0;
    for (const auto& rec : r.sender_trace.records()) {
      if (!r.sender_trace.is_from_local(rec) && rec.tcp.flags.ack &&
          trace::seq_gt(rec.tcp.ack, iss + 1))
        break;
      if (r.sender_trace.is_from_local(rec) && rec.tcp.payload_len > 0) ++n;
    }
    return n;
  };
  auto mutate = [](tcp::SessionConfig& c) {
    c.sender.offered_mss = 1460;
    c.receiver.mss_to_offer = 512;  // negotiated MSS = 512
  };
  auto hpux = run(*tcp::find_profile("HP/UX"), mutate);
  auto reno = run(tcp::generic_reno(), mutate);
  EXPECT_GE(count_first_flight(hpux, 1000), 2u);  // 1460-byte initial cwnd
  EXPECT_EQ(count_first_flight(reno, 1000), 1u);
}

TEST(MinorVariations, HpuxDistinguishableWhenMssDiffers) {
  auto mutate = [](tcp::SessionConfig& c) {
    c.sender.offered_mss = 1460;
    c.receiver.mss_to_offer = 512;
    c.fwd_path.loss_prob = 0.02;
  };
  auto r = run(*tcp::find_profile("HP/UX"), mutate, 5);
  EXPECT_LT(penalty_of(*tcp::find_profile("HP/UX"), r.sender_trace),
            penalty_of(tcp::generic_reno(), r.sender_trace));
}

// ---- DEC OSF/1: MSS confusion (window arithmetic includes options) ----

TEST(MinorVariations, MssConfusionGrowsWindowFaster) {
  // Same conditions, forced into congestion avoidance by a quench; the
  // confused accounting (+4 bytes per segment) opens the window a little
  // faster. Measure total data sent by a fixed early deadline.
  auto count_by = [](const tcp::SessionResult& r, std::int64_t deadline_us) {
    std::uint64_t bytes = 0;
    for (const auto& rec : r.sender_trace.records()) {
      if (rec.timestamp.count() > deadline_us) break;
      if (r.sender_trace.is_from_local(rec)) bytes += rec.tcp.payload_len;
    }
    return bytes;
  };
  tcp::TcpProfile confused = tcp::generic_reno();
  confused.mss_includes_options = true;
  auto mutate = [](tcp::SessionConfig& c) { c.sender.transfer_bytes = 200 * 1024; };
  auto a = run(confused, mutate);
  auto b = run(tcp::generic_reno(), mutate);
  // The effect is small (4/512 per increment) but strictly nonnegative.
  EXPECT_GE(count_by(a, 900'000), count_by(b, 900'000));
}

// ---- IRIX: dup acks update cwnd; dup counter survives timeouts ----

TEST(MinorVariations, IrixDupAcksOpenWindow) {
  // Under reordering, IRIX's dup-ack bug opens the window without any
  // forward progress; a compliant stack's cwnd is untouched by dups.
  auto mutate = [](tcp::SessionConfig& c) {
    c.fwd_path.reorder_prob = 0.05;
    c.fwd_path.reorder_extra = util::Duration::millis(8);
  };
  auto irix = run(*tcp::find_profile("IRIX"), mutate, 3);
  // Its own profile explains it; the non-buggy HP/UX profile (also Reno
  // lineage) must fit strictly worse or equal -- and critically, the IRIX
  // profile must stay clean.
  auto rep = core::SenderAnalyzer(*tcp::find_profile("IRIX")).analyze(irix.sender_trace);
  EXPECT_TRUE(rep.violations.empty());
  EXPECT_EQ(rep.unexplained_retransmissions, 0u);
}

// ---- Eqn 1 vs Eqn 2 discrimination under sustained congestion avoidance ----

TEST(MinorVariations, GrowthRuleDiscriminableAfterLoss) {
  // A long transfer with an early loss puts the sender into congestion
  // avoidance for most of the connection; the +MSS/8 term accumulates into
  // a window difference the analyzer can tell apart.
  auto mutate = [](tcp::SessionConfig& c) {
    c.sender.transfer_bytes = 300 * 1024;
    c.fwd_path.drop_nth = {12};
  };
  tcp::TcpProfile eqn1 = tcp::generic_reno();
  eqn1.cwnd_increase = tcp::CwndIncrease::kEqn1;
  auto r = run(tcp::generic_reno(), mutate, 9);
  EXPECT_LT(penalty_of(tcp::generic_reno(), r.sender_trace),
            penalty_of(eqn1, r.sender_trace));
  auto r1 = run(eqn1, mutate, 9);
  EXPECT_LT(penalty_of(eqn1, r1.sender_trace),
            penalty_of(tcp::generic_reno(), r1.sender_trace));
}

// ---- Header-prediction deflation bug discrimination ----

TEST(MinorVariations, DeflationBugDiscriminable) {
  // Recovery that exits via the header-predicted path leaves the window
  // inflated; the corrected profile under-predicts the following burst.
  tcp::TcpProfile buggy = tcp::generic_reno();          // carries the bug
  tcp::TcpProfile fixed = *tcp::find_profile("HP/UX");  // corrected deflation
  auto mutate = [](tcp::SessionConfig& c) {
    c.sender.transfer_bytes = 200 * 1024;
    c.fwd_path.drop_nth = {30};
  };
  auto r = run(buggy, mutate, 13);
  EXPECT_LE(penalty_of(buggy, r.sender_trace), penalty_of(fixed, r.sender_trace));
}

// ---- Zero-window stall and recovery via window updates ----

TEST(MinorVariations, ZeroWindowStallRecoversViaUpdate) {
  // A tiny receive buffer with a glacial app: the advertised window
  // pinches to (near) zero, the sender stalls, and the receiver's drain
  // updates reopen it. The transfer must still complete, app-limited.
  tcp::SessionConfig cfg = tcp::default_session();
  cfg.sender_profile = tcp::generic_reno();
  cfg.receiver_profile = cfg.sender_profile;
  cfg.sender.transfer_bytes = 8 * 1024;
  cfg.receiver.recv_buffer = 2 * 1024;
  cfg.receiver.app_read_rate_bytes_per_sec = 5'000.0;
  cfg.time_limit = util::Duration::seconds(60.0);
  auto r = tcp::run_session(cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.receiver_stats.bytes_delivered, 8u * 1024u);
  EXPECT_GT(r.elapsed.to_seconds(), 1.2);  // ~8 KB at 5 kB/s
  // The advertised window visibly pinched. (Explicit drain updates are not
  // required in this regime: every regular ack already re-advertises the
  // freed space, and the silly-window trickle keeps the pipe alive.)
  std::uint32_t min_w = ~0u;
  for (const auto& rec : r.sender_trace.records()) {
    if (r.sender_trace.is_from_local(rec) || !rec.tcp.flags.ack || rec.tcp.flags.syn)
      continue;
    min_w = std::min(min_w, rec.tcp.window);
  }
  EXPECT_LT(min_w, 1024u);
}

}  // namespace
}  // namespace tcpanaly
