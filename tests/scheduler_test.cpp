// The persistent work-stealing task system under tcpanalyd and the
// parallel helpers: priority ordering, stealing, drain-vs-shutdown
// semantics, the parallel_map_on determinism contract, and the spool's
// atomic claim-by-rename protocol under racing scanners.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <future>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "daemon/spool.hpp"
#include "util/parallel.hpp"
#include "util/scheduler.hpp"

namespace tcpanaly {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

/// Spin until pred() holds (the scheduler has no "wait until running"
/// hook; these are sub-millisecond state transitions).
template <typename Pred>
void spin_until(Pred pred) {
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (!pred()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "condition never held";
    std::this_thread::sleep_for(1ms);
  }
}

TEST(Scheduler, RunsSubmittedTasksAndCountsThem) {
  util::Scheduler sched(3);
  EXPECT_EQ(sched.size(), 3u);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i)
    sched.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  sched.drain();
  EXPECT_EQ(ran.load(), 100);
  const auto stats = sched.stats();
  EXPECT_EQ(stats.submitted, 100u);
  EXPECT_EQ(stats.executed, 100u);
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_EQ(stats.running, 0u);
  // drain() leaves the scheduler usable.
  sched.submit([&ran] { ran.fetch_add(1); });
  sched.drain();
  EXPECT_EQ(ran.load(), 101);
}

TEST(Scheduler, ShutdownDrainRunsEverythingQueued) {
  std::atomic<int> ran{0};
  util::Scheduler sched(2);
  for (int i = 0; i < 200; ++i) sched.submit([&ran] { ran.fetch_add(1); });
  const std::size_t discarded = sched.shutdown(util::Scheduler::ShutdownMode::kDrain);
  EXPECT_EQ(discarded, 0u);
  EXPECT_EQ(ran.load(), 200);
  // Submitting after shutdown is a caller error, reported loudly.
  EXPECT_THROW(sched.submit([] {}), std::runtime_error);
}

TEST(Scheduler, ShutdownDiscardDropsQueuedWorkAndCountsIt) {
  std::atomic<int> ran{0};
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  util::Scheduler sched(1);
  // Block the only worker, then queue work behind it: kDiscard must drop
  // exactly the queued tasks (the running blocker still completes).
  sched.submit([released, &ran] {
    released.wait();
    ran.fetch_add(1);
  });
  spin_until([&] { return sched.stats().running == 1; });
  for (int i = 0; i < 50; ++i) sched.submit([&ran] { ran.fetch_add(1); });
  release.set_value();
  const std::size_t discarded = sched.shutdown(util::Scheduler::ShutdownMode::kDiscard);
  // The blocker ran; of the 50 queued tasks, every one the workers had not
  // yet claimed was dropped, and discarded counts exactly those.
  EXPECT_EQ(static_cast<std::size_t>(ran.load()) + discarded, 51u);
  EXPECT_EQ(sched.stats().discarded, discarded);
}

TEST(Scheduler, PriorityTiersExecuteHighBeforeNormalBeforeLow) {
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  util::Scheduler sched(1);
  sched.submit([released] { released.wait(); });
  spin_until([&] { return sched.stats().running == 1; });

  std::mutex mu;
  std::vector<std::string> order;
  auto note = [&](std::string tag) {
    return [&order, &mu, tag = std::move(tag)] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(tag);
    };
  };
  // Submitted in deliberately scrambled priority order while the sole
  // worker is blocked; execution must follow tier then FIFO-within-tier.
  sched.submit(note("L1"), util::TaskPriority::kLow);
  sched.submit(note("N1"), util::TaskPriority::kNormal);
  sched.submit(note("H1"), util::TaskPriority::kHigh);
  sched.submit(note("L2"), util::TaskPriority::kLow);
  sched.submit(note("N2"), util::TaskPriority::kNormal);
  sched.submit(note("H2"), util::TaskPriority::kHigh);
  release.set_value();
  sched.drain();
  EXPECT_EQ(order, (std::vector<std::string>{"H1", "H2", "N1", "N2", "L1", "L2"}));
}

TEST(Scheduler, IdleWorkerStealsBlockedWorkersBacklog) {
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  util::Scheduler sched(2);
  sched.submit([released] { released.wait(); });
  spin_until([&] { return sched.stats().running == 1; });

  // Ten quick tasks round-robin across both workers' deques -- five land
  // with the blocked worker and can ONLY complete by being stolen. All
  // ten must finish while the blocker still holds its worker.
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) sched.submit([&ran] { ran.fetch_add(1); });
  spin_until([&] { return ran.load() == 10; });
  EXPECT_EQ(sched.stats().running, 1u);       // blocker still in place
  EXPECT_GE(sched.stats().stolen, 5u);        // the blocked deque's share
  release.set_value();
  sched.drain();
  EXPECT_EQ(sched.stats().executed, 11u);
}

// -- parallel_map as a thin client of a persistent scheduler --

TEST(Scheduler, ParallelMapOnMatchesSerialForAnyWorkerCount) {
  std::vector<int> in(997);  // odd size: uneven final round-robin round
  for (int i = 0; i < 997; ++i) in[i] = i;
  const auto serial = util::parallel_map(in, [](int v) { return v * 3 + 1; }, 1);
  for (unsigned workers : {1u, 2u, 3u, 8u}) {
    util::Scheduler sched(workers);
    const auto out = util::parallel_map_on(sched, in, [](int v) { return v * 3 + 1; });
    EXPECT_EQ(out, serial) << "workers=" << workers;
    // The scheduler survives the map and can host another.
    const auto again = util::parallel_map_on(sched, in, [](int v) { return v - 7; });
    ASSERT_EQ(again.size(), in.size());
    EXPECT_EQ(again[996], 996 - 7);
  }
}

TEST(Scheduler, ParallelMapOnRethrowsLowestFailingIndex) {
  util::Scheduler sched(4);
  std::vector<int> in(100);
  for (int rep = 0; rep < 10; ++rep) {
    try {
      util::parallel_map_on(sched, in, [&](const int& v) {
        const std::size_t i = static_cast<std::size_t>(&v - in.data());
        if (i == 5 || i == 60 || i == 99)
          throw std::runtime_error("boom " + std::to_string(i));
        return 0;
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom 5");
    }
    // The error must not poison the scheduler for the next map.
    const auto ok = util::parallel_map_on(sched, in, [](const int&) { return 1; });
    EXPECT_EQ(ok.size(), in.size());
  }
}

// -- spool claim-by-rename under racing scanners --

TEST(SpoolClaim, TwoRacingScannersClaimEveryFileExactlyOnce) {
  const fs::path root =
      fs::temp_directory_path() / "tcpanaly_spool_race_test";
  fs::remove_all(root);
  fs::create_directories(root);
  constexpr int kFiles = 100;
  for (int i = 0; i < kFiles; ++i) {
    std::ofstream(root / ("cap" + std::to_string(i) + ".pcap")) << "x";
  }

  // Two Spool instances on the SAME root, each hammered by its own thread:
  // the rename(2) race decides ownership, and the union of both claim sets
  // must be exactly the 100 files with no duplicates.
  daemon::Spool a(root), b(root);
  std::vector<daemon::ClaimedCapture> got_a, got_b;
  auto scanner = [](daemon::Spool& spool, std::vector<daemon::ClaimedCapture>& got) {
    while (true) {
      auto claimed = spool.claim(7);
      if (claimed.empty() && spool.pending() == 0) break;
      for (auto& c : claimed) got.push_back(std::move(c));
    }
  };
  std::thread ta(scanner, std::ref(a), std::ref(got_a));
  std::thread tb(scanner, std::ref(b), std::ref(got_b));
  ta.join();
  tb.join();

  std::set<std::string> names;
  for (const auto& c : got_a) names.insert(c.name);
  for (const auto& c : got_b) names.insert(c.name);
  EXPECT_EQ(got_a.size() + got_b.size(), static_cast<std::size_t>(kFiles))
      << "a file was claimed twice (or lost)";
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kFiles));
  // Every claimed file actually lives in work/ now; the root holds none.
  EXPECT_EQ(a.pending(), 0u);
  for (const auto& c : got_a) EXPECT_TRUE(fs::exists(c.work_path));
  fs::remove_all(root);
}

TEST(SpoolClaim, CompleteRoutesToDoneAndFailedAndOrphansRecover) {
  const fs::path root = fs::temp_directory_path() / "tcpanaly_spool_state_test";
  fs::remove_all(root);
  fs::create_directories(root);
  std::ofstream(root / "good.pcap") << "g";
  std::ofstream(root / "bad.pcap") << "b";

  daemon::Spool spool(root);
  auto claimed = spool.claim(10);
  ASSERT_EQ(claimed.size(), 2u);
  // A second Spool on the same root sees the claimed files as orphans --
  // exactly what a daemon restarted after a crash must re-queue.
  EXPECT_EQ(daemon::Spool(root).orphans().size(), 2u);

  for (auto& c : claimed) spool.complete(c, /*ok=*/c.name == "good.pcap");
  EXPECT_TRUE(fs::exists(root / "done" / "good.pcap"));
  EXPECT_TRUE(fs::exists(root / "failed" / "bad.pcap"));
  EXPECT_TRUE(spool.orphans().empty());
  EXPECT_EQ(spool.pending(), 0u);
  fs::remove_all(root);
}

}  // namespace
}  // namespace tcpanaly
