// Two-layer pipeline equivalence (the refactor's hard guarantee): the
// shared-annotation path must reproduce the legacy per-candidate path
// bit-for-bit. Digests retained from the pre-refactor pipeline:
//
//   * the O(n*w) sender-window-cap scan the replayer used to run twice
//     per candidate, copied here verbatim as the reference;
//   * per-candidate analyzers fed the raw Trace (each building its own
//     throwaway annotation), compared against the matcher's shared one;
//   * calibrate(Trace), compared against analyze_trace's detector runs
//     over the shared annotation.
//
// Everything is compared through the report JSON (full field-by-field
// digests), not just penalties.
#include <gtest/gtest.h>

#include <vector>

#include "core/analyze.hpp"
#include "core/annotations.hpp"
#include "core/json_convert.hpp"
#include "core/matcher.hpp"
#include "corpus/corpus.hpp"
#include "tcp/profiles.hpp"
#include "tcp/session.hpp"

namespace tcpanaly::core {
namespace {

using trace::seq_diff;
using trace::seq_gt;
using trace::seq_le;
using trace::SeqNum;
using trace::Trace;
using util::Duration;
using util::TimePoint;

/// The pre-refactor Replayer::infer_sender_window_cap, verbatim: for each
/// qualifying send, the newest ack at least `grace` older than the send is
/// found by walking the ack-frontier history collected so far.
std::uint32_t legacy_window_cap(const Trace& trace, Duration grace) {
  bool have = false;
  SeqNum smax = 0;
  std::uint32_t peak = 0;
  std::vector<std::pair<TimePoint, SeqNum>> acks;  // new-ack frontier history
  SeqNum highest_ack = 0;
  bool have_ack = false;
  std::size_t lag = 0;  // index of first ack NOT yet safely processed
  SeqNum una_lagged = 0;
  for (const auto& rec : trace.records()) {
    if (trace.is_from_local(rec)) {
      const SeqNum end = rec.tcp.seq_end();
      if (rec.tcp.payload_len == 0 && !rec.tcp.flags.syn && !rec.tcp.flags.fin) continue;
      if (!have) {
        smax = end;
        una_lagged = rec.tcp.seq;
        have = true;
      } else if (seq_gt(end, smax)) {
        smax = end;
      }
      while (lag < acks.size() && acks[lag].first + grace <= rec.timestamp) {
        una_lagged = seq_gt(acks[lag].second, una_lagged) ? acks[lag].second : una_lagged;
        ++lag;
      }
      peak = std::max(peak, static_cast<std::uint32_t>(seq_diff(smax, una_lagged)));
    } else if (rec.tcp.flags.ack && have &&
               (!have_ack || seq_gt(rec.tcp.ack, highest_ack)) &&
               seq_le(rec.tcp.ack, smax)) {
      highest_ack = rec.tcp.ack;
      have_ack = true;
      acks.emplace_back(rec.timestamp, rec.tcp.ack);
    }
  }
  return peak;
}

tcp::SessionResult scenario(const char* impl, double loss, std::int64_t delay_ms,
                            std::uint64_t seed, std::size_t bytes = 64 * 1024) {
  corpus::ScenarioParams p;
  p.loss_prob = loss;
  p.one_way_delay = Duration::millis(delay_ms);
  p.transfer_bytes = bytes;
  p.seed = seed;
  return tcp::run_session(corpus::make_session(*tcp::find_profile(impl), p));
}

std::string dump(const report::Json& j) { return j.dump(); }

TEST(PipelineEquivalence, AnnotationCapMatchesLegacyScanAcrossGraces) {
  const tcp::SessionResult runs[] = {
      scenario("Generic Reno", 0.02, 20, 17),
      scenario("Linux 1.0", 0.02, 20, 17),
      scenario("Solaris 2.4", 0.0, 340, 9),
      scenario("Generic Tahoe", 0.05, 60, 3),
  };
  const Duration graces[] = {Duration::zero(), Duration::millis(5),
                             Duration::millis(30), Duration::millis(800)};
  for (const auto& r : runs) {
    const AnnotatedTrace ann(r.sender_trace, {Duration::millis(30)});
    for (Duration g : graces) {
      EXPECT_EQ(ann.sender_window_cap(g), legacy_window_cap(r.sender_trace, g));
    }
  }
}

TEST(PipelineEquivalence, SharedAnnotationFitsMatchPerCandidateReplays) {
  auto r = scenario("Generic Reno", 0.02, 20, 17, 128 * 1024);
  const auto candidates = tcp::all_profiles();
  MatchOptions mopts;
  mopts.jobs = 1;

  const AnnotatedTrace ann(r.sender_trace, {mopts.sender.vantage_grace});
  const MatchResult shared = match_implementations(ann, candidates, mopts);
  ASSERT_EQ(shared.fits.size(), candidates.size());
  for (const auto& fit : shared.fits) {
    // Legacy path: the candidate re-derives every trace fact for itself.
    SenderReport fresh =
        SenderAnalyzer(fit.profile, mopts.sender).analyze(r.sender_trace);
    EXPECT_EQ(dump(to_json(fit.sender)), dump(to_json(fresh)))
        << "candidate " << fit.profile.name;
    EXPECT_DOUBLE_EQ(fit.penalty, fresh.penalty());
  }
}

TEST(PipelineEquivalence, ReceiverSideSharedAnnotationMatches) {
  auto r = scenario("Solaris 2.4", 0.02, 20, 11);
  const auto candidates = tcp::all_profiles();
  MatchOptions mopts;
  mopts.jobs = 1;
  const AnnotatedTrace ann(r.receiver_trace, {mopts.sender.vantage_grace});
  const MatchResult shared = match_implementations(ann, candidates, mopts);
  for (const auto& fit : shared.fits) {
    ReceiverReport fresh =
        ReceiverAnalyzer(fit.profile, mopts.receiver).analyze(r.receiver_trace);
    EXPECT_EQ(dump(to_json(fit.receiver)), dump(to_json(fresh)))
        << "candidate " << fit.profile.name;
  }
}

TEST(PipelineEquivalence, SerialAndParallelMatchingIdentical) {
  auto r = scenario("Generic Reno", 0.02, 20, 5);
  MatchOptions serial, parallel;
  serial.jobs = 1;
  parallel.jobs = 4;
  const MatchResult a = match_implementations(r.sender_trace, tcp::all_profiles(), serial);
  const MatchResult b =
      match_implementations(r.sender_trace, tcp::all_profiles(), parallel);
  ASSERT_EQ(a.fits.size(), b.fits.size());
  for (std::size_t i = 0; i < a.fits.size(); ++i) {
    EXPECT_EQ(a.fits[i].profile.name, b.fits[i].profile.name);
    EXPECT_EQ(a.fits[i].fit, b.fits[i].fit);
    // analysis_wall legitimately differs; the reports may not.
    EXPECT_EQ(dump(to_json(a.fits[i].sender)), dump(to_json(b.fits[i].sender)));
  }
}

TEST(PipelineEquivalence, CorpusFitsAndCalibrationMatchLegacyPath) {
  corpus::CorpusOptions copts;
  copts.seeds_per_cell = 1;
  copts.loss_probs = {0.0, 0.02};
  copts.one_way_delays = {Duration::millis(20)};
  MatchOptions mopts;
  mopts.jobs = 1;
  for (const char* impl : {"Generic Reno", "Linux 1.0"}) {
    for (const auto& entry :
         corpus::generate_corpus(*tcp::find_profile(impl), copts)) {
      if (!entry.result.completed) continue;
      const Trace& tr = entry.result.sender_trace;
      TraceAnalysis analysis = analyze_trace(tr, tcp::all_profiles(), mopts);

      // Calibration: identical to the retained legacy aggregate.
      CalibrationReport legacy = calibrate(tr);
      EXPECT_EQ(analysis.calibration.summary(), legacy.summary());
      EXPECT_EQ(dump(to_json(analysis.calibration)), dump(to_json(legacy)));

      // Matching: identical to the legacy clean-then-match sequence.
      const MatchResult legacy_match = match_implementations(
          legacy.duplication.duplicate_indices.empty()
              ? tr
              : strip_duplicates(tr, legacy.duplication),
          tcp::all_profiles(), mopts);
      ASSERT_EQ(analysis.match.fits.size(), legacy_match.fits.size());
      for (std::size_t i = 0; i < analysis.match.fits.size(); ++i) {
        EXPECT_EQ(analysis.match.fits[i].profile.name,
                  legacy_match.fits[i].profile.name);
        EXPECT_DOUBLE_EQ(analysis.match.fits[i].penalty,
                         legacy_match.fits[i].penalty);
        EXPECT_EQ(analysis.match.fits[i].fit, legacy_match.fits[i].fit);
      }
    }
  }
}

TEST(PipelineEquivalence, AnnotateStageAppearsExactlyOnce) {
  auto r = scenario("Generic Reno", 0.01, 20, 7);
  util::StageTimer timer;
  analyze_trace(r.sender_trace, tcp::all_profiles(), MatchOptions{}, &timer);
  std::size_t annotate_stages = 0;
  for (const auto& stage : timer.stages())
    if (stage.name == "annotate") ++annotate_stages;
  EXPECT_EQ(annotate_stages, 1u);
}

TEST(PipelineEquivalence, CleanedTraceAliasesInputWhenNothingStripped) {
  auto r = scenario("Generic Reno", 0.01, 20, 7);
  TraceAnalysis analysis = analyze_trace(r.sender_trace);
  EXPECT_FALSE(analysis.cleaned.owns_copy());
  EXPECT_EQ(&analysis.cleaned.get(), &r.sender_trace);
  EXPECT_EQ(analysis.cleaned.size(), r.sender_trace.size());
}

TEST(PipelineEquivalence, DuplicatedTraceStripsOnceAndMatchesLegacyPath) {
  // Double every outbound record (filter-added later copy at the same
  // timestamp), as the IRIX artifact does. Loss-free so content pairs are
  // unambiguous.
  auto r = scenario("Generic Reno", 0.0, 20, 7);
  Trace doubled(r.sender_trace.meta());
  for (std::size_t i = 0; i < r.sender_trace.size(); ++i) {
    const auto& rec = r.sender_trace[i];
    doubled.push_back(rec);
    if (r.sender_trace.is_from_local(rec)) doubled.push_back(rec);
  }

  MatchOptions mopts;
  mopts.jobs = 1;
  TraceAnalysis analysis = analyze_trace(doubled, tcp::all_profiles(), mopts);
  ASSERT_FALSE(analysis.calibration.duplication.duplicate_indices.empty());
  EXPECT_TRUE(analysis.cleaned.owns_copy());
  EXPECT_LT(analysis.cleaned.size(), doubled.size());

  CalibrationReport legacy = calibrate(doubled);
  EXPECT_EQ(analysis.calibration.summary(), legacy.summary());
  Trace stripped = strip_duplicates(doubled, legacy.duplication);
  EXPECT_EQ(analysis.cleaned.size(), stripped.size());
  const MatchResult legacy_match =
      match_implementations(stripped, tcp::all_profiles(), mopts);
  ASSERT_EQ(analysis.match.fits.size(), legacy_match.fits.size());
  for (std::size_t i = 0; i < analysis.match.fits.size(); ++i) {
    EXPECT_EQ(analysis.match.fits[i].profile.name, legacy_match.fits[i].profile.name);
    EXPECT_DOUBLE_EQ(analysis.match.fits[i].penalty, legacy_match.fits[i].penalty);
  }
}

TEST(PipelineEquivalence, SsthreshInferenceMatchesAcrossOverloads) {
  auto r = scenario("Generic Reno", 0.02, 20, 17);
  auto profile = *tcp::find_profile("Generic Reno");
  SenderAnalysisOptions opts;
  const AnnotatedTrace ann(r.sender_trace, {opts.vantage_grace});
  EXPECT_EQ(infer_initial_ssthresh(r.sender_trace, profile, opts),
            infer_initial_ssthresh(ann, profile, opts));
}

}  // namespace
}  // namespace tcpanaly::core
