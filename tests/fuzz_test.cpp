// Tests for the fuzz layer: mutator determinism and structural boundary
// detection, the fault-injection taxonomy against the calibration
// detectors (paper section 3), and a short seeded fuzz run over all
// three parsers that must complete without a contract violation.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/calibration.hpp"
#include "fuzz/fault_inject.hpp"
#include "fuzz/fuzzer.hpp"
#include "fuzz/mutators.hpp"
#include "tcp/session.hpp"
#include "trace/pcap_io.hpp"
#include "util/rng.hpp"

namespace tcpanaly::fuzz {
namespace {

// A clean, loss-free but *window-limited* session: the 4 KB offered
// window sits far below the path's bandwidth-delay product, so every
// window-update ack liberates data -- the precondition for the
// resequencing contradiction.
Bytes window_limited_pcap() {
  tcp::SessionConfig cfg = tcp::default_session();
  cfg.sender.transfer_bytes = 64 * 1024;
  cfg.receiver.recv_buffer = 4 * 1024;
  cfg.seed = 7;
  std::ostringstream out;
  trace::write_pcap(out, tcp::run_session(cfg).sender_trace);
  const std::string s = out.str();
  return Bytes(s.begin(), s.end());
}

trace::Trace read_back(const Bytes& bytes) {
  std::istringstream in(std::string(bytes.begin(), bytes.end()));
  return trace::read_pcap(in).trace;
}

// ------------------------------------------------------------- mutators

TEST(Mutators, DeterministicGivenSeed) {
  const auto seeds = seed_inputs(InputFormat::kPcap);
  ASSERT_FALSE(seeds.empty());
  util::Rng rng_a(99), rng_b(99);
  for (int i = 0; i < 20; ++i) {
    const Mutation a = mutate(seeds[0], InputFormat::kPcap, rng_a);
    const Mutation b = mutate(seeds[0], InputFormat::kPcap, rng_b);
    EXPECT_EQ(a.data, b.data) << "mutation " << i;
    EXPECT_EQ(a.description, b.description) << "mutation " << i;
  }
}

TEST(Mutators, PcapBoundariesAlignWithRecords) {
  const Bytes pcap = window_limited_pcap();
  const auto bounds = structural_boundaries(pcap, InputFormat::kPcap);
  const auto records = pcap_records(pcap);
  ASSERT_FALSE(bounds.empty());
  EXPECT_EQ(bounds.front(), 0u);  // start of the global header
  // Every record start must be a known boundary.
  std::size_t matched = 0;
  for (const auto& r : records)
    for (const std::size_t b : bounds)
      if (b == r.offset) {
        ++matched;
        break;
      }
  EXPECT_EQ(matched, records.size());
}

TEST(Mutators, JsonBoundariesNonEmpty) {
  const auto seeds = seed_inputs(InputFormat::kJson);
  ASSERT_FALSE(seeds.empty());
  const auto bounds = structural_boundaries(seeds[0], InputFormat::kJson);
  EXPECT_FALSE(bounds.empty());
  for (const std::size_t b : bounds) EXPECT_LE(b, seeds[0].size());
}

TEST(Mutators, SeedInputsAcceptedByParsers) {
  for (const InputFormat fmt :
       {InputFormat::kPcap, InputFormat::kPcapng, InputFormat::kJson}) {
    for (const auto& seed : seed_inputs(fmt)) {
      EXPECT_EQ(check_parse(fmt, seed, util::ParseLimits{}).outcome,
                ParseOutcome::kAccepted)
          << to_string(fmt);
      EXPECT_EQ(check_parse(fmt, seed, util::ParseLimits::fuzzing()).outcome,
                ParseOutcome::kAccepted)
          << to_string(fmt);
    }
  }
}

// ------------------------------------------------------ fault injection

TEST(FaultInject, CleanControlCalibratesTrustworthy) {
  const auto cal = core::calibrate(read_back(window_limited_pcap()));
  EXPECT_TRUE(cal.trustworthy());
}

TEST(FaultInject, DropsFireDropDetector) {
  const Bytes base = window_limited_pcap();
  util::Rng rng(1);
  FaultSummary sum;
  const Bytes mangled = inject_drops(base, 0.25, rng, &sum);
  EXPECT_GT(sum.dropped, 0u);
  const auto cal = core::calibrate(read_back(mangled));
  EXPECT_TRUE(cal.drops.drops_detected());
}

TEST(FaultInject, SystematicAdditionsFireDuplicationDetector) {
  const Bytes base = window_limited_pcap();
  util::Rng rng(1);
  FaultSummary sum;
  const Bytes mangled =
      inject_additions(base, pcap_records(base).size(), rng, &sum);
  EXPECT_EQ(sum.added, pcap_records(base).size());
  const auto cal = core::calibrate(read_back(mangled));
  EXPECT_FALSE(cal.duplication.duplicate_indices.empty());
}

TEST(FaultInject, ResequencingFiresOrderingDetector) {
  const Bytes base = window_limited_pcap();
  util::Rng rng(1);
  FaultSummary sum;
  const Bytes mangled = inject_resequencing(base, 4, rng, &sum);
  EXPECT_GT(sum.resequenced, 1u);
  const auto cal = core::calibrate(read_back(mangled));
  EXPECT_TRUE(cal.resequencing.ordering_untrustworthy());
}

TEST(FaultInject, TimeTravelFiresClockDetector) {
  const Bytes base = window_limited_pcap();
  util::Rng rng(1);
  FaultSummary sum;
  const Bytes mangled = inject_time_travel(base, 2, rng, &sum);
  EXPECT_EQ(sum.time_travel, 2u);
  const auto cal = core::calibrate(read_back(mangled));
  EXPECT_TRUE(cal.time_travel.clock_untrustworthy());
}

TEST(FaultInject, InjectionsPreserveParsability) {
  const Bytes base = window_limited_pcap();
  util::Rng rng(5);
  for (const Bytes& mangled :
       {inject_drops(base, 0.3, rng), inject_additions(base, 10, rng),
        inject_resequencing(base, 3, rng), inject_time_travel(base, 3, rng)}) {
    EXPECT_EQ(check_parse(InputFormat::kPcap, mangled, util::ParseLimits{}).outcome,
              ParseOutcome::kAccepted);
  }
}

// ------------------------------------------------------------ fuzz loop

TEST(Fuzzer, ShortSeededRunFindsNoContractViolations) {
  for (const InputFormat fmt :
       {InputFormat::kPcap, InputFormat::kPcapng, InputFormat::kJson}) {
    FuzzOptions opts;
    opts.seed = 42;
    opts.iterations = 300;
    const FuzzStats stats = fuzz_parser(fmt, opts);
    EXPECT_EQ(stats.iterations, 300u);
    EXPECT_EQ(stats.accepted + stats.rejected, 300u) << to_string(fmt);
    for (const auto& f : stats.failures)
      ADD_FAILURE() << to_string(fmt) << " iter " << f.iteration << " ["
                    << f.mutations << "]: " << f.error;
  }
}

TEST(Fuzzer, MinimizeIsIdentityWithoutViolation) {
  const auto seeds = seed_inputs(InputFormat::kJson);
  ASSERT_FALSE(seeds.empty());
  EXPECT_EQ(minimize(InputFormat::kJson, seeds[0], util::ParseLimits{}), seeds[0]);
}

}  // namespace
}  // namespace tcpanaly::fuzz
