// Unit tests for the TcpSender endpoint, driven directly with synthetic
// acks over an event loop: handshake, slow start, fast retransmit /
// recovery, timeouts (go-back-N), the Linux flight storms, the Solaris
// beyond-ack quirk, source quench responses, and FIN handling.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "netsim/event_loop.hpp"
#include "tcp/profiles.hpp"
#include "tcp/sender.hpp"

namespace tcpanaly::tcp {
namespace {

using trace::TcpSegment;
using util::Duration;
using util::TimePoint;

struct Harness {
  explicit Harness(const TcpProfile& profile, SenderConfig cfg = {}) {
    cfg.local = {0x0a000001, 1000};
    cfg.remote = {0x0a000002, 2000};
    if (cfg.transfer_bytes == 100 * 1024) cfg.transfer_bytes = 16 * 1024;
    config = cfg;
    sender = std::make_unique<TcpSender>(loop, profile, cfg, [this](const TcpSegment& seg) {
      sent_at.push_back(loop.now());
      sent.push_back(seg);
    });
  }

  /// Handshake up to ESTABLISHED; returns segments sent so far (SYN + ack).
  void establish(std::uint32_t peer_window = 16384, bool synack_mss = true) {
    sender->start();
    TcpSegment synack;
    synack.seq = 50'000;
    synack.ack = config.initial_seq + 1;
    synack.flags.syn = true;
    synack.flags.ack = true;
    synack.window = peer_window;
    if (synack_mss) synack.mss_option = 512;
    deliver_at(TimePoint(40'000), synack);
  }

  void deliver_at(TimePoint at, TcpSegment seg) {
    loop.schedule_at(at, [this, seg] { sender->on_segment(seg); });
    loop.run_until(at);
  }

  void ack_at(std::int64_t us, trace::SeqNum ackno, std::uint32_t window = 16384) {
    TcpSegment ack;
    ack.seq = 50'001;
    ack.ack = ackno;
    ack.flags.ack = true;
    ack.window = window;
    deliver_at(TimePoint(us), ack);
  }

  std::vector<TcpSegment> data_since(std::size_t from) const {
    std::vector<TcpSegment> out;
    for (std::size_t i = from; i < sent.size(); ++i)
      if (sent[i].payload_len > 0) out.push_back(sent[i]);
    return out;
  }

  sim::EventLoop loop;
  SenderConfig config;
  std::unique_ptr<TcpSender> sender;
  std::vector<TcpSegment> sent;
  std::vector<TimePoint> sent_at;
};

trace::SeqNum data_start() { return SenderConfig{}.initial_seq + 1; }

TEST(Sender, HandshakeCarriesMssOption) {
  Harness h(generic_reno());
  h.establish();
  ASSERT_GE(h.sent.size(), 2u);
  EXPECT_TRUE(h.sent[0].flags.syn);
  ASSERT_TRUE(h.sent[0].mss_option.has_value());
  EXPECT_EQ(*h.sent[0].mss_option, 512);
  EXPECT_TRUE(h.sent[1].is_pure_ack());
  EXPECT_TRUE(h.sender->established());
}

TEST(Sender, InitialFlightIsOneSegment) {
  Harness h(generic_reno());
  h.establish();
  auto data = h.data_since(0);
  ASSERT_EQ(data.size(), 1u);
  EXPECT_EQ(data[0].seq, data_start());
  EXPECT_EQ(data[0].payload_len, 512u);
}

TEST(Sender, SlowStartDoublesPerRoundTrip) {
  Harness h(generic_reno());
  h.establish();
  std::size_t mark = h.sent.size();
  h.ack_at(80'000, data_start() + 512);  // 1 segment acked
  EXPECT_EQ(h.data_since(mark).size(), 2u);  // cwnd 2
  mark = h.sent.size();
  h.ack_at(120'000, data_start() + 3 * 512);  // both acked
  // One ack covering two segments grows cwnd by one MSS (per-ack growth):
  // 1024 acked + 512 growth = 3 fresh segments.
  EXPECT_EQ(h.data_since(mark).size(), 3u);
}

TEST(Sender, RespectsOfferedWindow) {
  SenderConfig cfg;
  cfg.transfer_bytes = 16 * 1024;
  Harness h(generic_reno(), cfg);
  h.establish(/*peer_window=*/1024);
  // Even as acks open cwnd, never more than 1024 bytes in flight.
  h.ack_at(80'000, data_start() + 512, /*window=*/1024);
  h.ack_at(120'000, data_start() + 1024, /*window=*/1024);
  trace::SeqNum max_end = 0;
  for (const auto& seg : h.sent)
    if (seg.payload_len > 0) max_end = trace::seq_max(max_end, seg.seq_end());
  EXPECT_LE(trace::seq_diff(max_end, data_start() + 1024), 1024);
}

TEST(Sender, RespectsSendBuffer) {
  SenderConfig cfg;
  cfg.transfer_bytes = 16 * 1024;
  cfg.send_buffer = 1024;
  Harness h(generic_reno(), cfg);
  h.establish();
  struct AckPoint {
    std::int64_t at;
    trace::SeqNum ackno;
  };
  const AckPoint acks[] = {{80'000, data_start() + 512},
                           {120'000, data_start() + 1024},
                           {160'000, data_start() + 2048}};
  for (const auto& a : acks) h.ack_at(a.at, a.ackno);
  // At no point may unacked data exceed the 1 KB buffer: each segment's
  // end stays within (latest ack delivered before it was sent) + buffer.
  for (std::size_t i = 0; i < h.sent.size(); ++i) {
    if (h.sent[i].payload_len == 0) continue;
    trace::SeqNum una = data_start();
    for (const auto& a : acks)
      if (util::TimePoint(a.at) <= h.sent_at[i]) una = a.ackno;
    EXPECT_LE(trace::seq_diff(h.sent[i].seq_end(), una), 1024)
        << "segment " << i << " at " << h.sent_at[i].to_string();
  }
}

TEST(Sender, FastRetransmitOnThirdDupAck) {
  Harness h(generic_reno());
  h.establish();
  h.ack_at(80'000, data_start() + 512);   // 2 in flight now
  h.ack_at(120'000, data_start() + 1536); // 4 in flight
  const std::size_t mark = h.sent.size();
  for (int i = 0; i < 3; ++i) h.ack_at(160'000 + i * 500, data_start() + 1536);
  auto resent = h.data_since(mark);
  ASSERT_FALSE(resent.empty());
  EXPECT_EQ(resent[0].seq, data_start() + 1536);  // the ack-point segment
  EXPECT_EQ(h.sender->stats().fast_retransmits, 1u);
  EXPECT_EQ(h.sender->stats().retransmissions, 1u);
}

TEST(Sender, NoFastRetransmitWithoutTheKnob) {
  Harness h(*find_profile("Linux 1.0"));
  h.establish();
  h.ack_at(80'000, data_start() + 512);
  const std::size_t mark = h.sent.size();
  // Linux 1.0 has no fast retransmit but DOES storm the flight on dup #1.
  h.ack_at(120'000, data_start() + 512);
  EXPECT_EQ(h.sender->stats().fast_retransmits, 0u);
  EXPECT_EQ(h.sender->stats().flight_retransmit_bursts, 1u);
  EXPECT_FALSE(h.data_since(mark).empty());
}

TEST(Sender, RenoSendsNewDataDuringRecovery) {
  Harness h(generic_reno());
  h.establish();
  h.ack_at(80'000, data_start() + 512);
  h.ack_at(120'000, data_start() + 1536);
  for (int i = 0; i < 3; ++i) h.ack_at(160'000 + i * 500, data_start() + 1536);
  const std::size_t mark = h.sent.size();
  // Further dups inflate the window: new data beyond snd_max goes out.
  for (int i = 0; i < 6; ++i) h.ack_at(170'000 + i * 500, data_start() + 1536);
  bool sent_new = false;
  for (const auto& seg : h.data_since(mark))
    if (trace::seq_gt(seg.seq, data_start() + 3 * 512)) sent_new = true;
  EXPECT_TRUE(sent_new);
}

TEST(Sender, TahoeStaysSilentDuringDupStorm) {
  Harness h(generic_tahoe());
  h.establish();
  h.ack_at(80'000, data_start() + 512);
  h.ack_at(120'000, data_start() + 1536);
  for (int i = 0; i < 3; ++i) h.ack_at(160'000 + i * 500, data_start() + 1536);
  const std::size_t mark = h.sent.size();
  for (int i = 0; i < 6; ++i) h.ack_at(170'000 + i * 500, data_start() + 1536);
  // No fast recovery: the collapsed window sends nothing on further dups.
  EXPECT_TRUE(h.data_since(mark).empty());
}

TEST(Sender, TimeoutGoesBackN) {
  Harness h(generic_reno());
  h.establish();
  h.ack_at(80'000, data_start() + 512);  // 2 segments now in flight
  const std::size_t mark = h.sent.size();
  // Nothing arrives; the retransmission timer fires (3 s default RTO).
  h.loop.run_until(TimePoint(4'000'000));
  auto resent = h.data_since(mark);
  ASSERT_FALSE(resent.empty());
  EXPECT_EQ(resent[0].seq, data_start() + 512);  // back to snd_una
  EXPECT_EQ(h.sender->stats().timeouts, 1u);
}

TEST(Sender, LinuxTimeoutRetransmitsWholeFlight) {
  Harness h(*find_profile("Linux 1.0"));
  h.establish();
  h.ack_at(80'000, data_start() + 512);  // cwnd opens; 2 in flight
  const std::size_t before = h.sent.size();
  h.loop.run_until(TimePoint(4'000'000));
  auto resent = h.data_since(before);
  // Both unacked segments re-sent in one burst.
  ASSERT_GE(resent.size(), 2u);
  EXPECT_EQ(resent[0].seq, data_start() + 512);
  EXPECT_EQ(resent[1].seq, data_start() + 1024);
  EXPECT_GE(h.sender->stats().flight_retransmit_bursts, 1u);
}

TEST(Sender, SolarisQuirkRetransmitsInsteadOfNewData) {
  Harness h(*find_profile("Solaris 2.4"));
  h.establish();
  h.ack_at(80'000, data_start() + 512);  // two more segments go out
  // A premature Solaris timeout (~300 ms after the ack restarted the
  // timer) retransmits the first outstanding segment...
  h.loop.run_until(TimePoint(500'000));
  ASSERT_GE(h.sender->stats().timeouts, 1u);
  const std::size_t mark = h.sent.size();
  // ...then an ack covering the retransmitted data (with more data still
  // outstanding) triggers the quirk: resend the packet just above the ack
  // instead of liberated new data.
  h.ack_at(600'000, data_start() + 1024);
  auto sent = h.data_since(mark);
  ASSERT_FALSE(sent.empty());
  EXPECT_EQ(sent[0].seq, data_start() + 1024);
  EXPECT_GE(h.sender->stats().beyond_ack_retransmits, 1u);
}

TEST(Sender, SourceQuenchCollapsesBsdWindow) {
  Harness h(generic_reno());
  h.establish();
  h.ack_at(80'000, data_start() + 512);
  h.ack_at(120'000, data_start() + 1536);
  const std::uint32_t before = h.sender->window().cwnd();
  h.loop.schedule_at(TimePoint(130'000), [&] { h.sender->on_source_quench(); });
  h.loop.run_until(TimePoint(130'000));
  EXPECT_LT(h.sender->window().cwnd(), before);
  EXPECT_EQ(h.sender->window().cwnd(), 512u);
  EXPECT_EQ(h.sender->stats().source_quenches, 1u);
}

TEST(Sender, Net3BugBlastsOfferedWindow) {
  SenderConfig cfg;
  cfg.transfer_bytes = 32 * 1024;
  Harness h(*find_profile("BSDI"), cfg);
  h.establish(/*peer_window=*/16384, /*synack_mss=*/false);
  // cwnd uninitialized: the whole 16 KB offered window leaves at once,
  // in default-MSS (536) segments.
  auto data = h.data_since(0);
  EXPECT_GE(data.size(), 16384u / 536u);
  EXPECT_EQ(data[0].payload_len, 536u);
}

TEST(Sender, FinSentWhenAllDataAcked) {
  SenderConfig cfg;
  cfg.transfer_bytes = 1024;
  Harness h(generic_reno(), cfg);
  h.establish();
  h.ack_at(80'000, data_start() + 512);
  h.ack_at(120'000, data_start() + 1024);
  ASSERT_FALSE(h.sent.empty());
  EXPECT_TRUE(h.sent.back().flags.fin);
  EXPECT_EQ(h.sent.back().seq, data_start() + 1024);
  EXPECT_FALSE(h.sender->finished());
  h.ack_at(160'000, data_start() + 1025);  // FIN acked
  EXPECT_TRUE(h.sender->finished());
}

TEST(Sender, SynRetransmittedOnSeparateTimer) {
  Harness h(generic_reno());
  h.sender->start();
  // No SYN-ack: the 6 s SYN timer fires and the SYN is re-sent.
  h.loop.run_until(TimePoint(7'000'000));
  int syns = 0;
  for (const auto& seg : h.sent)
    if (seg.flags.syn) ++syns;
  EXPECT_EQ(syns, 2);
  EXPECT_EQ(h.sender->stats().timeouts, 0u);  // data-timer stats untouched
}

TEST(Sender, GivesUpAfterMaxSynRetries) {
  SenderConfig cfg;
  cfg.max_syn_retries = 2;
  Harness h(generic_reno(), cfg);
  h.sender->start();
  h.loop.run_until(TimePoint(60'000'000));
  EXPECT_TRUE(h.sender->failed());
}

TEST(Sender, WindowUpdateUnblocksZeroWindowlessStall) {
  SenderConfig cfg;
  cfg.transfer_bytes = 4096;
  Harness h(generic_reno(), cfg);
  h.establish(/*peer_window=*/512);
  std::size_t mark = h.sent.size();
  h.ack_at(80'000, data_start() + 512, /*window=*/512);
  EXPECT_EQ(h.data_since(mark).size(), 1u);  // window permits one segment
  mark = h.sent.size();
  // Pure window update (same ack number, bigger window) releases more.
  h.ack_at(120'000, data_start() + 1024, /*window=*/4096);
  EXPECT_GE(h.data_since(mark).size(), 2u);
}

class AllProfilesSender : public ::testing::TestWithParam<TcpProfile> {};

TEST_P(AllProfilesSender, CompletesAgainstAnIdealAcker) {
  // Drive each sender with an ideal receiver that immediately acks
  // everything it has seen, in order; every profile must complete.
  SenderConfig cfg;
  cfg.transfer_bytes = 8 * 1024;
  Harness h(GetParam(), cfg);
  h.establish();
  std::int64_t t = 100'000;
  for (int round = 0; round < 200 && !h.sender->finished(); ++round) {
    // Ack the highest in-order byte sent so far (+FIN octet if present).
    trace::SeqNum hi = data_start();
    bool fin = false;
    for (const auto& seg : h.sent) {
      if (seg.payload_len > 0 && seg.seq_end() == hi + seg.payload_len) hi = seg.seq_end();
      if (seg.flags.fin) fin = true;
    }
    h.ack_at(t, fin && hi == data_start() + cfg.transfer_bytes ? hi + 1 : hi);
    t += 40'000;
  }
  EXPECT_TRUE(h.sender->finished()) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(Registry, AllProfilesSender,
                         ::testing::ValuesIn(all_profiles()),
                         [](const ::testing::TestParamInfo<TcpProfile>& info) {
                           std::string name = info.param.name;
                           for (char& c : name)
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           return name;
                         });

}  // namespace
}  // namespace tcpanaly::tcp

namespace tcpanaly::tcp {
namespace {

TEST(Sender, GivesUpWithRstAfterMaxRetries) {
  SenderConfig cfg;
  cfg.max_data_retries = 3;
  Harness h(generic_reno(), cfg);
  h.establish();
  // Nothing ever acks the data: 3 retries, then abandonment with a RST.
  h.loop.run_until(TimePoint(120'000'000));
  EXPECT_TRUE(h.sender->failed());
  EXPECT_TRUE(h.sender->stats().gave_up);
  EXPECT_TRUE(h.sender->stats().sent_rst);
  EXPECT_TRUE(h.sent.back().flags.rst);
  EXPECT_EQ(h.sender->stats().timeouts, 4u);  // 3 retries + the fatal one
}

TEST(Sender, SilentGiveUpWithoutRstKnob) {
  TcpProfile p = generic_reno();
  p.rst_on_give_up = false;
  SenderConfig cfg;
  cfg.max_data_retries = 3;
  Harness h(p, cfg);
  h.establish();
  h.loop.run_until(TimePoint(120'000'000));
  EXPECT_TRUE(h.sender->failed());
  EXPECT_TRUE(h.sender->stats().gave_up);
  EXPECT_FALSE(h.sender->stats().sent_rst);
  EXPECT_FALSE(h.sent.back().flags.rst);
}

TEST(Sender, ForwardProgressResetsGiveUpCounter) {
  SenderConfig cfg;
  cfg.max_data_retries = 3;
  cfg.transfer_bytes = 4 * 1024;
  Harness h(generic_reno(), cfg);
  h.establish();
  // Two timeouts, then an ack arrives; the counter must reset and the
  // transfer continue rather than die on the next timeout.
  h.loop.run_until(TimePoint(6'000'000));
  EXPECT_GE(h.sender->stats().timeouts, 1u);
  h.ack_at(7'000'000, data_start() + 512);
  EXPECT_FALSE(h.sender->failed());
  h.loop.run_until(TimePoint(11'000'000));
  EXPECT_FALSE(h.sender->failed());  // fresh retries available
}

}  // namespace
}  // namespace tcpanaly::tcp
