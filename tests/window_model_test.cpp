// Unit and property tests for the shared congestion-window rules: the
// profile knobs of paper sections 8.1-8.4, each pinned to a concrete
// numeric behavior, plus invariants swept over every registry profile.
#include <gtest/gtest.h>

#include "tcp/profiles.hpp"
#include "tcp/window_model.hpp"

namespace tcpanaly::tcp {
namespace {

constexpr std::uint32_t kMss = 512;

WindowModel established(const TcpProfile& p, bool synack_mss = true,
                        std::uint32_t offered_mss = kMss) {
  WindowModel m(p, kMss, 4);
  m.on_connection_established(synack_mss, offered_mss);
  return m;
}

// --------------------------------------------------- initial conditions

TEST(WindowModel, InitialCwndOneSegment) {
  auto m = established(generic_reno());
  EXPECT_EQ(m.cwnd(), kMss);
  EXPECT_EQ(m.ssthresh(), WindowModel::kHugeWindow);
}

TEST(WindowModel, SolarisInitialSsthreshEightSegments) {
  auto m = established(*find_profile("Solaris 2.4"));
  EXPECT_EQ(m.ssthresh(), 8 * kMss);
}

TEST(WindowModel, Linux10InitialSsthreshOneSegment) {
  auto m = established(*find_profile("Linux 1.0"));
  EXPECT_EQ(m.ssthresh(), kMss);
  // With ssthresh = 1 MSS and the strict test, every ack lands in
  // congestion avoidance; growth is crippled from the start. (The very
  // first increment, MSS^2/cwnd with cwnd == MSS, coincidentally equals a
  // slow-start step -- the sublinearity shows from the second ack on.)
  EXPECT_FALSE(m.in_slow_start());
  m.on_new_ack(kMss);
  m.on_new_ack(kMss);
  EXPECT_LT(m.cwnd(), 3 * kMss);
}

TEST(WindowModel, Net3BugWithoutMssOption) {
  auto m = established(*find_profile("BSDI"), /*synack_mss=*/false);
  EXPECT_EQ(m.cwnd(), WindowModel::kHugeWindow);
  EXPECT_EQ(m.ssthresh(), WindowModel::kHugeWindow);
}

TEST(WindowModel, Net3BugRequiresMissingOption) {
  auto m = established(*find_profile("BSDI"), /*synack_mss=*/true);
  EXPECT_EQ(m.cwnd(), kMss);
}

TEST(WindowModel, NonNet3UnaffectedByMissingOption) {
  auto m = established(*find_profile("HP/UX"), /*synack_mss=*/false);
  EXPECT_LE(m.cwnd(), 2 * kMss);
}

TEST(WindowModel, OfferedMssInitialization) {
  // HP/UX sizes the initial window from the MSS it offered, not the
  // negotiated one.
  auto m = established(*find_profile("HP/UX"), true, /*offered_mss=*/1460);
  EXPECT_EQ(m.cwnd(), 1460u);
  auto reno = established(generic_reno(), true, 1460);
  EXPECT_EQ(reno.cwnd(), kMss);
}

TEST(WindowModel, MssConfusionInflatesAccounting) {
  auto m = established(*find_profile("DEC OSF/1"));
  EXPECT_EQ(m.accounting_mss(), kMss + 4);  // options folded in
  EXPECT_EQ(established(generic_reno()).accounting_mss(), kMss);
}

// --------------------------------------------------------------- growth

TEST(WindowModel, SlowStartAddsOneSegmentPerAck) {
  auto m = established(generic_reno());
  m.on_new_ack(kMss);
  m.on_new_ack(kMss);
  EXPECT_EQ(m.cwnd(), 3 * kMss);
}

TEST(WindowModel, Eqn1VsEqn2CongestionAvoidance) {
  TcpProfile eqn1 = generic_tahoe();
  TcpProfile eqn2 = generic_reno();
  auto m1 = established(eqn1);
  auto m2 = established(eqn2);
  m1.on_timeout(8 * kMss);  // ssthresh 2048, cwnd 512
  m2.on_timeout(8 * kMss);
  // Climb out of slow start.
  while (m1.in_slow_start()) m1.on_new_ack(kMss);
  while (m2.in_slow_start()) m2.on_new_ack(kMss);
  const std::uint32_t c1 = m1.cwnd(), c2 = m2.cwnd();
  m1.on_new_ack(kMss);
  m2.on_new_ack(kMss);
  EXPECT_EQ(m1.cwnd() - c1, kMss * kMss / c1);             // pure Eqn 1
  EXPECT_EQ(m2.cwnd() - c2, kMss * kMss / c2 + kMss / 8);  // +MSS/8 term
}

TEST(WindowModel, SlowStartBoundaryTest) {
  for (auto test : {SlowStartTest::kLess, SlowStartTest::kLessEqual}) {
    TcpProfile p = generic_reno();
    p.ss_test = test;
    auto m = established(p);
    m.on_timeout(8 * kMss);
    while (m.cwnd() < m.ssthresh()) m.on_new_ack(kMss);
    ASSERT_EQ(m.cwnd(), m.ssthresh());
    EXPECT_EQ(m.in_slow_start(), test == SlowStartTest::kLessEqual);
  }
}

// ------------------------------------------------------------- cutting

TEST(WindowModel, BsdSsthreshRoundsToSegmentMultiple) {
  auto m = established(generic_reno());
  m.on_timeout(5'000);  // half = 2500 -> 4 segments = 2048
  EXPECT_EQ(m.ssthresh(), 2048u);
  EXPECT_EQ(m.cwnd(), kMss);
}

TEST(WindowModel, SolarisSsthreshUnrounded) {
  auto m = established(*find_profile("Solaris 2.4"));
  m.on_timeout(5'000);
  EXPECT_EQ(m.ssthresh(), 2500u);
}

TEST(WindowModel, TahoeMinimumClampOneSegment) {
  auto m = established(generic_tahoe());
  m.on_timeout(600);  // half = 300 < MSS
  EXPECT_EQ(m.ssthresh(), kMss);
}

TEST(WindowModel, RenoMinimumClampTwoSegments) {
  auto m = established(generic_reno());
  m.on_timeout(600);
  EXPECT_EQ(m.ssthresh(), 2 * kMss);
}

// ---------------------------------------------------------- fast recovery

TEST(WindowModel, RenoInflatesOnFastRetransmit) {
  auto m = established(generic_reno());
  for (int i = 0; i < 15; ++i) m.on_new_ack(kMss);
  m.on_fast_retransmit(8 * kMss);
  EXPECT_EQ(m.cwnd(), m.ssthresh() + 3 * kMss);
  m.on_dup_ack_in_recovery();
  EXPECT_EQ(m.cwnd(), m.ssthresh() + 4 * kMss);
}

TEST(WindowModel, TahoeCollapsesOnFastRetransmit) {
  auto m = established(generic_tahoe());
  for (int i = 0; i < 15; ++i) m.on_new_ack(kMss);
  m.on_fast_retransmit(8 * kMss);
  EXPECT_EQ(m.cwnd(), kMss);
  const std::uint32_t before = m.cwnd();
  m.on_dup_ack_in_recovery();  // no fast recovery: inert
  EXPECT_EQ(m.cwnd(), before);
}

TEST(WindowModel, CorrectRenoDeflatesOnExit) {
  TcpProfile p = generic_reno();
  p.deflate_cwnd_after_recovery = true;
  p.fencepost_recovery_bug = false;
  auto m = established(p);
  for (int i = 0; i < 15; ++i) m.on_new_ack(kMss);
  m.on_fast_retransmit(8 * kMss);
  for (int i = 0; i < 5; ++i) m.on_dup_ack_in_recovery();
  m.on_recovery_exit(/*via_header_prediction=*/true);
  EXPECT_EQ(m.cwnd(), m.ssthresh());
}

TEST(WindowModel, HeaderPredictionBugSkipsDeflationOnFastPath) {
  auto m = established(generic_reno());  // carries the bug
  for (int i = 0; i < 15; ++i) m.on_new_ack(kMss);
  m.on_fast_retransmit(8 * kMss);
  for (int i = 0; i < 5; ++i) m.on_dup_ack_in_recovery();
  const std::uint32_t inflated = m.cwnd();
  m.on_recovery_exit(/*via_header_prediction=*/true);
  EXPECT_EQ(m.cwnd(), inflated);  // forgot to shrink
}

TEST(WindowModel, FencepostBugBoundary) {
  // The buggy post-recovery check shrinks only when cwnd is STRICTLY above
  // ssthresh + MSS, so a window exactly one segment inflated stays
  // inflated. Construct that state with a dup-ack threshold of 1: the
  // fast-retransmit inflation is then ssthresh + 1 MSS exactly.
  TcpProfile buggy = generic_reno();
  buggy.deflate_cwnd_after_recovery = true;
  buggy.fencepost_recovery_bug = true;
  buggy.dup_ack_threshold = 1;
  TcpProfile correct = buggy;
  correct.fencepost_recovery_bug = false;

  auto mb = established(buggy);
  auto mc = established(correct);
  for (int i = 0; i < 15; ++i) {
    mb.on_new_ack(kMss);
    mc.on_new_ack(kMss);
  }
  mb.on_fast_retransmit(8 * kMss);
  mc.on_fast_retransmit(8 * kMss);
  ASSERT_EQ(mb.cwnd(), mb.ssthresh() + kMss);
  mb.on_recovery_exit(false);
  mc.on_recovery_exit(false);
  EXPECT_EQ(mb.cwnd(), mb.ssthresh() + kMss);  // the off-by-one survives
  EXPECT_EQ(mc.cwnd(), mc.ssthresh());         // correct code shrinks
}

TEST(WindowModel, FencepostBugShrinksAboveBoundary) {
  TcpProfile p = generic_reno();
  p.deflate_cwnd_after_recovery = true;
  p.fencepost_recovery_bug = true;
  auto m = established(p);
  for (int i = 0; i < 15; ++i) m.on_new_ack(kMss);
  m.on_fast_retransmit(8 * kMss);  // inflation = 3 MSS > 1 MSS boundary
  m.on_recovery_exit(false);
  EXPECT_EQ(m.cwnd(), m.ssthresh());
}

// --------------------------------------------------------- source quench

TEST(WindowModel, QuenchResponsesDiffer) {
  auto bsd = established(generic_reno());
  auto sol = established(*find_profile("Solaris 2.4"));
  auto lin = established(*find_profile("Linux 1.0"));
  for (auto* m : {&bsd, &sol, &lin})
    for (int i = 0; i < 10; ++i) m->on_new_ack(kMss);
  const std::uint32_t lin_before = lin.cwnd();
  const std::uint32_t sol_ssthresh_before = sol.ssthresh();

  bsd.on_source_quench(8 * kMss);
  EXPECT_EQ(bsd.cwnd(), kMss);
  EXPECT_EQ(bsd.ssthresh(), WindowModel::kHugeWindow);  // untouched

  sol.on_source_quench(8 * kMss);
  EXPECT_EQ(sol.cwnd(), kMss);
  EXPECT_LT(sol.ssthresh(), sol_ssthresh_before);  // also cut

  lin.on_source_quench(8 * kMss);
  EXPECT_EQ(lin.cwnd(), lin_before - kMss);  // merely one segment less
}

TEST(WindowModel, TrumpetIgnoresEverything) {
  auto m = established(*find_profile("Trumpet/Winsock"));
  EXPECT_EQ(m.cwnd(), WindowModel::kHugeWindow);
  m.on_timeout(8 * kMss);
  EXPECT_EQ(m.cwnd(), WindowModel::kHugeWindow);
  m.on_source_quench(8 * kMss);
  EXPECT_EQ(m.cwnd(), WindowModel::kHugeWindow);
}

TEST(WindowModel, DupAckUpdatesCwndBug) {
  auto irix = established(*find_profile("IRIX"));
  auto reno = established(generic_reno());
  const std::uint32_t i0 = irix.cwnd(), r0 = reno.cwnd();
  irix.on_dup_ack_below_threshold();
  reno.on_dup_ack_below_threshold();
  EXPECT_GT(irix.cwnd(), i0);  // the bug: dups open the window
  EXPECT_EQ(reno.cwnd(), r0);
}

// ---------------------------------------------------- property sweeps

class AllProfilesWindow : public ::testing::TestWithParam<TcpProfile> {};

TEST_P(AllProfilesWindow, CwndNeverZeroAndBounded) {
  auto m = established(GetParam());
  for (int i = 0; i < 200; ++i) {
    m.on_new_ack(kMss);
    ASSERT_GE(m.cwnd(), 1u);
    ASSERT_LE(m.cwnd(), WindowModel::kHugeWindow);
  }
  m.on_timeout(m.cwnd());
  ASSERT_GE(m.cwnd(), 1u);
  m.on_fast_retransmit(m.cwnd());
  ASSERT_GE(m.cwnd(), 1u);
}

TEST_P(AllProfilesWindow, SsthreshRespectsMinimumClamp) {
  const TcpProfile& p = GetParam();
  if (p.no_congestion_control) GTEST_SKIP();
  auto m = established(p);
  m.on_timeout(1);  // pathologically small flight
  EXPECT_GE(m.ssthresh(), p.min_ssthresh_segments * m.accounting_mss());
}

TEST_P(AllProfilesWindow, TimeoutAlwaysCollapsesToInitialWindow) {
  const TcpProfile& p = GetParam();
  if (p.no_congestion_control) GTEST_SKIP();
  auto m = established(p);
  for (int i = 0; i < 50; ++i) m.on_new_ack(kMss);
  m.on_timeout(m.cwnd());
  EXPECT_EQ(m.cwnd(), p.initial_cwnd_segments * m.accounting_mss());
}

TEST_P(AllProfilesWindow, GrowthIsMonotoneOnNewAcks) {
  auto m = established(GetParam());
  std::uint32_t prev = m.cwnd();
  for (int i = 0; i < 100; ++i) {
    m.on_new_ack(kMss);
    ASSERT_GE(m.cwnd(), prev);
    prev = m.cwnd();
  }
}

INSTANTIATE_TEST_SUITE_P(Registry, AllProfilesWindow,
                         ::testing::ValuesIn(all_profiles()),
                         [](const ::testing::TestParamInfo<TcpProfile>& info) {
                           std::string name = info.param.name;
                           for (char& c : name)
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           return name;
                         });

}  // namespace
}  // namespace tcpanaly::tcp
