// Integration: tcpanaly's sender/receiver analysis against simulator
// traces whose generating implementation is known.
#include <gtest/gtest.h>

#include "core/analyze.hpp"
#include "core/matcher.hpp"
#include "core/sender_analyzer.hpp"
#include "tcp/profiles.hpp"
#include "tcp/session.hpp"

namespace tcpanaly {
namespace {

using core::FitClass;
using tcp::SessionConfig;
using tcp::SessionResult;

SessionResult run_clean(const tcp::TcpProfile& profile, std::uint64_t seed = 1,
                        double loss = 0.0) {
  SessionConfig cfg = tcp::default_session();
  cfg.sender_profile = profile;
  cfg.receiver_profile = profile;
  cfg.fwd_path.loss_prob = loss;
  cfg.seed = seed;
  SessionResult r = tcp::run_session(cfg);
  EXPECT_TRUE(r.completed) << profile.name;
  return r;
}

class TrueProfileFits : public ::testing::TestWithParam<tcp::TcpProfile> {};

TEST_P(TrueProfileFits, SenderCleanPathIsCloseFit) {
  const tcp::TcpProfile profile = GetParam();
  SessionResult r = run_clean(profile);
  core::SenderReport rep = core::SenderAnalyzer(profile).analyze(r.sender_trace);
  EXPECT_TRUE(rep.handshake_seen);
  EXPECT_EQ(rep.violations.size(), 0u) << profile.name;
  EXPECT_EQ(rep.unexplained_retransmissions, 0u) << profile.name;
  EXPECT_LT(rep.response_delays.mean().to_millis(), 50.0) << profile.name;
}

TEST_P(TrueProfileFits, SenderLossyPathIsCloseFit) {
  const tcp::TcpProfile profile = GetParam();
  SessionResult r = run_clean(profile, /*seed=*/11, /*loss=*/0.02);
  core::SenderReport rep = core::SenderAnalyzer(profile).analyze(r.sender_trace);
  EXPECT_EQ(rep.violations.size(), 0u) << profile.name;
  EXPECT_EQ(rep.unexplained_retransmissions, 0u) << profile.name;
}

TEST_P(TrueProfileFits, ReceiverCleanPathIsCloseFit) {
  const tcp::TcpProfile profile = GetParam();
  SessionResult r = run_clean(profile, /*seed=*/5);
  core::ReceiverReport rep = core::ReceiverAnalyzer(profile).analyze(r.receiver_trace);
  EXPECT_EQ(rep.policy_violations, 0u) << profile.name;
  EXPECT_EQ(rep.gratuitous_acks, 0u) << profile.name;
  EXPECT_EQ(rep.mandatory_missed, 0u) << profile.name;
  EXPECT_FALSE(rep.distribution_mismatch) << profile.name;
}

INSTANTIATE_TEST_SUITE_P(Registry, TrueProfileFits,
                         ::testing::ValuesIn(tcp::all_profiles()),
                         [](const ::testing::TestParamInfo<tcp::TcpProfile>& info) {
                           std::string name = info.param.name;
                           for (char& c : name)
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           return name;
                         });

TEST(Matcher, DistinguishesTahoeFromRenoUnderLoss) {
  // Fast recovery only manifests under loss; a Reno trace must violate the
  // Tahoe model's collapsed window.
  SessionResult reno = run_clean(tcp::generic_reno(), 21, 0.02);
  auto reno_as_reno = core::SenderAnalyzer(tcp::generic_reno()).analyze(reno.sender_trace);
  auto reno_as_tahoe = core::SenderAnalyzer(tcp::generic_tahoe()).analyze(reno.sender_trace);
  EXPECT_LT(reno_as_reno.penalty(), reno_as_tahoe.penalty());
}

TEST(Matcher, SolarisTraceRejectsBsdRtoProfiles) {
  // Premature 300 ms retransmissions cannot be timeouts of a 1 s-floor
  // BSD timer.
  SessionConfig cfg = tcp::default_session();
  cfg.sender_profile = *tcp::find_profile("Solaris 2.4");
  cfg.receiver_profile = cfg.sender_profile;
  cfg.fwd_path.prop_delay = util::Duration::millis(340);
  cfg.rev_path.prop_delay = util::Duration::millis(340);
  SessionResult r = tcp::run_session(cfg);
  ASSERT_TRUE(r.completed);
  auto as_solaris =
      core::SenderAnalyzer(*tcp::find_profile("Solaris 2.4")).analyze(r.sender_trace);
  auto as_reno = core::SenderAnalyzer(tcp::generic_reno()).analyze(r.sender_trace);
  EXPECT_EQ(as_solaris.unexplained_retransmissions, 0u);
  EXPECT_GT(as_reno.unexplained_retransmissions, 3u);
}

TEST(Matcher, IdentifiesLinux10ReceiverPolicy) {
  SessionResult r = run_clean(*tcp::find_profile("Linux 1.0"), 9);
  auto as_linux =
      core::ReceiverAnalyzer(*tcp::find_profile("Linux 1.0")).analyze(r.receiver_trace);
  auto as_bsd = core::ReceiverAnalyzer(tcp::generic_reno()).analyze(r.receiver_trace);
  EXPECT_LT(as_linux.penalty(), as_bsd.penalty());
  EXPECT_TRUE(as_bsd.distribution_mismatch);
}

TEST(Matcher, FullMatchRanksTrueSenderProfileFirst) {
  SessionResult r = run_clean(*tcp::find_profile("Linux 1.0"), 31, 0.03);
  auto match = core::match_implementations(r.sender_trace, tcp::all_profiles());
  EXPECT_TRUE(match.identifies("Linux 1.0")) << match.render();
}

TEST(Analyze, CleanTraceIsTrustworthy) {
  SessionResult r = run_clean(tcp::generic_reno(), 3);
  auto analysis = core::analyze_trace(r.sender_trace);
  EXPECT_TRUE(analysis.calibration.trustworthy()) << analysis.calibration.summary();
  EXPECT_EQ(analysis.match.best().fit, FitClass::kClose) << analysis.match.render();
}

}  // namespace
}  // namespace tcpanaly

namespace tcpanaly {
namespace {

TEST(CorruptionInference, HeaderOnlyCaptureInfersDiscards) {
  // Corrupted packets with a header-only snaplen: the checksum is
  // unavailable, so the analyzer must infer the discards from acking
  // behavior (paper section 7). Zero false positives on clean traces is
  // asserted elsewhere; here at least some true discards must be found
  // across a sweep.
  std::uint64_t truth = 0, inferred = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    tcp::SessionConfig cfg = tcp::default_session();
    cfg.sender_profile = tcp::generic_reno();
    cfg.receiver_profile = cfg.sender_profile;
    cfg.fwd_path.corrupt_prob = 0.03;
    cfg.receiver_filter.snap_headers_only = true;
    cfg.seed = seed;
    auto r = tcp::run_session(cfg);
    truth += r.receiver_stats.corrupted_discarded;
    auto rep = core::ReceiverAnalyzer(tcp::generic_reno()).analyze(r.receiver_trace);
    inferred += rep.inferred_corrupt_packets;
    EXPECT_EQ(rep.checksum_verified_corrupt, 0u);  // nothing verifiable
  }
  EXPECT_GT(truth, 0u);
  EXPECT_GT(inferred, 0u);
  EXPECT_LE(inferred, truth);  // conservative: never over-reports
}

TEST(CorruptionInference, FullCaptureUsesChecksumsInstead) {
  tcp::SessionConfig cfg = tcp::default_session();
  cfg.sender_profile = tcp::generic_reno();
  cfg.receiver_profile = cfg.sender_profile;
  cfg.fwd_path.corrupt_prob = 0.02;
  cfg.seed = 3;
  auto r = tcp::run_session(cfg);
  auto rep = core::ReceiverAnalyzer(tcp::generic_reno()).analyze(r.receiver_trace);
  EXPECT_EQ(rep.checksum_verified_corrupt, r.receiver_stats.corrupted_discarded);
}

}  // namespace
}  // namespace tcpanaly
