// Path-dynamics metrics: bottleneck-bandwidth estimation from arrival
// spacing, and reordering / replication / loss measurement from aligned
// trace pairs.
#include "core/path_metrics.hpp"

#include <gtest/gtest.h>

#include "tcp/profiles.hpp"
#include "tcp/session.hpp"

namespace tcpanaly::core {
namespace {

tcp::SessionConfig bottleneck_session(double bottleneck_bps, std::uint64_t seed) {
  tcp::SessionConfig cfg = tcp::default_session();
  cfg.sender_profile = tcp::generic_reno();
  cfg.receiver_profile = cfg.sender_profile;
  cfg.sender.transfer_bytes = 200 * 1024;
  cfg.fwd_path.rate_bytes_per_sec = 1'000'000.0;  // fast local link
  cfg.fwd_path.bottleneck_rate_bytes_per_sec = bottleneck_bps;
  cfg.fwd_path.bottleneck_queue_limit = 20;
  cfg.seed = seed;
  return cfg;
}

// Hand-built receiver trace: data arrivals spaced exactly at a 64 KB/s
// serialization rate for 512+54-byte frames.
trace::Trace synthetic_arrivals(int count, double rate_bps, std::uint32_t payload) {
  trace::Trace t;
  t.meta().local = {0x0a000002, 5000};
  t.meta().remote = {0x0a000001, 4000};
  t.meta().role = trace::LocalRole::kReceiver;
  const double spacing_sec = (payload + 54.0) / rate_bps;  // wire framing overhead
  trace::SeqNum seq = 1;
  for (int i = 0; i < count; ++i) {
    trace::PacketRecord rec;
    rec.timestamp = util::TimePoint::origin() +
                    util::Duration::seconds(spacing_sec * static_cast<double>(i));
    rec.src = t.meta().remote;
    rec.dst = t.meta().local;
    rec.tcp.seq = seq;
    rec.tcp.flags.ack = true;
    rec.tcp.payload_len = payload;
    seq += payload;
    t.push_back(rec);
  }
  return t;
}

TEST(Bottleneck, RecoversSyntheticSpacingExactly) {
  auto t = synthetic_arrivals(40, 64'000.0, 512);
  auto est = estimate_bottleneck(t);
  ASSERT_TRUE(est.reliable);
  EXPECT_NEAR(est.bytes_per_sec, 64'000.0, 64'000.0 * 0.05);
  EXPECT_GT(est.mode_fraction, 0.8);
}

TEST(Bottleneck, EmptyAndTinyTracesYieldNoEstimate) {
  trace::Trace empty;
  EXPECT_FALSE(estimate_bottleneck(empty).reliable);
  EXPECT_EQ(estimate_bottleneck(empty).samples, 0);
  auto two = synthetic_arrivals(2, 64'000.0, 512);
  auto est = estimate_bottleneck(two);
  EXPECT_FALSE(est.reliable);  // below min_samples
}

TEST(Bottleneck, EstimatesSimulatedBottleneck) {
  for (double rate : {32'000.0, 128'000.0}) {
    auto r = tcp::run_session(bottleneck_session(rate, 7));
    ASSERT_TRUE(r.completed);
    auto est = estimate_bottleneck(r.receiver_trace);
    ASSERT_TRUE(est.reliable) << "rate " << rate;
    EXPECT_NEAR(est.bytes_per_sec, rate, rate * 0.15) << "rate " << rate;
  }
}

TEST(Bottleneck, WithoutBottleneckStageFindsLocalLink) {
  auto cfg = bottleneck_session(0.0, 3);  // bottleneck stage disabled
  auto r = tcp::run_session(cfg);
  ASSERT_TRUE(r.completed);
  auto est = estimate_bottleneck(r.receiver_trace);
  ASSERT_TRUE(est.reliable);
  EXPECT_NEAR(est.bytes_per_sec, 1'000'000.0, 1'000'000.0 * 0.15);
}

TEST(Bottleneck, SurvivesModerateCrossTraffic) {
  auto cfg = bottleneck_session(64'000.0, 11);
  cfg.fwd_path.cross_traffic_intensity = 0.2;
  auto r = tcp::run_session(cfg);
  ASSERT_TRUE(r.completed);
  auto est = estimate_bottleneck(r.receiver_trace);
  ASSERT_GT(est.samples, 8);
  // Cross traffic widens the mode but the dominant spacing is still the
  // bottleneck's serialization time.
  EXPECT_NEAR(est.bytes_per_sec, 64'000.0, 64'000.0 * 0.25);
}

TEST(PairDynamics, CleanPathMatchesEverythingInOrder) {
  auto cfg = tcp::default_session();
  cfg.sender_profile = tcp::generic_reno();
  cfg.receiver_profile = cfg.sender_profile;
  cfg.seed = 5;
  auto r = tcp::run_session(cfg);
  ASSERT_TRUE(r.completed);
  auto rep = measure_path_dynamics(r.sender_trace, r.receiver_trace);
  EXPECT_GT(rep.matched, 100u);
  EXPECT_EQ(rep.reordered, 0u);
  EXPECT_EQ(rep.network_duplicates, 0u);
  EXPECT_EQ(rep.network_losses, 0u);
  EXPECT_EQ(rep.sender_copies, rep.receiver_copies);
}

TEST(PairDynamics, CountsNetworkLossExactly) {
  auto cfg = tcp::default_session();
  cfg.sender_profile = tcp::generic_reno();
  cfg.receiver_profile = cfg.sender_profile;
  cfg.fwd_path.loss_prob = 0.03;
  cfg.seed = 9;
  auto r = tcp::run_session(cfg);
  ASSERT_TRUE(r.completed);
  auto rep = measure_path_dynamics(r.sender_trace, r.receiver_trace);
  // Data-direction random drops are data packets (acks flow the other way);
  // SYN/FIN-only losses would be the only slack, and retries make them rare.
  EXPECT_EQ(rep.network_losses, r.fwd_network_drops);
  EXPECT_EQ(rep.network_duplicates, 0u);
}

TEST(PairDynamics, CountsNetworkReplication) {
  auto cfg = tcp::default_session();
  cfg.sender_profile = tcp::generic_reno();
  cfg.receiver_profile = cfg.sender_profile;
  cfg.fwd_path.dup_prob = 0.02;
  cfg.seed = 13;
  auto r = tcp::run_session(cfg);
  ASSERT_TRUE(r.completed);
  auto rep = measure_path_dynamics(r.sender_trace, r.receiver_trace);
  EXPECT_EQ(rep.network_duplicates, r.fwd_duplicated);
  EXPECT_GT(rep.network_duplicates, 0u);
  EXPECT_EQ(rep.network_losses, 0u);
}

TEST(PairDynamics, DetectsInjectedReordering) {
  auto cfg = tcp::default_session();
  cfg.sender_profile = tcp::generic_reno();
  cfg.receiver_profile = cfg.sender_profile;
  cfg.fwd_path.reorder_prob = 0.05;
  cfg.fwd_path.reorder_extra = util::Duration::millis(8);
  cfg.seed = 21;
  auto r = tcp::run_session(cfg);
  ASSERT_TRUE(r.completed);
  auto rep = measure_path_dynamics(r.sender_trace, r.receiver_trace);
  EXPECT_GT(rep.reordered, 0u);
  // Every reordered arrival stems from a delay-injected packet; a delayed
  // packet with no close-behind successor is not overtaken, so measured
  // count is bounded by the injection count.
  EXPECT_LE(rep.reordered, r.fwd_reorder_delayed);
  EXPECT_EQ(rep.network_losses, 0u);
}

TEST(PairDynamics, RetransmittedCopiesMatchByOccurrence) {
  // Force a drop so the same sequence range crosses twice: the first send
  // is a loss, the retransmission matches the single arrival.
  auto cfg = tcp::default_session();
  cfg.sender_profile = tcp::generic_tahoe();
  cfg.receiver_profile = cfg.sender_profile;
  cfg.fwd_path.drop_nth = {20};
  cfg.seed = 2;
  auto r = tcp::run_session(cfg);
  ASSERT_TRUE(r.completed);
  auto rep = measure_path_dynamics(r.sender_trace, r.receiver_trace);
  EXPECT_EQ(rep.network_losses, 1u);
  EXPECT_EQ(rep.network_duplicates, 0u);
  EXPECT_EQ(rep.matched, rep.receiver_copies);
}

TEST(PairDynamics, EmptyTracesAreHandled) {
  trace::Trace a, b;
  auto rep = measure_path_dynamics(a, b);
  EXPECT_EQ(rep.matched, 0u);
  EXPECT_EQ(rep.reorder_fraction(), 0.0);
  EXPECT_EQ(rep.loss_fraction(), 0.0);
}

}  // namespace
}  // namespace tcpanaly::core
