// Calibration-registry contract tests: stable unique IDs, full scenario
// coverage (every registered detector has a deliberately violating AND a
// clean corpus trace that still exercises it), violation scenarios fail
// exactly their target detector, trustworthiness derives from the registry
// severities, and the streaming evaluator's verdict vectors are
// bit-identical to materialized calibrate() over the whole scenario grid
// in both builder modes.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "core/calibration.hpp"
#include "core/stream_analysis.hpp"
#include "netsim/tampering_scenarios.hpp"
#include "trace/record_source.hpp"

namespace tcpanaly::core {
namespace {

TEST(CalibrationRegistry, StableUniqueIds) {
  const auto& registry = calibration_registry();
  ASSERT_FALSE(registry.empty());
  std::set<std::string> ids;
  for (const auto& det : registry) {
    ASSERT_NE(det.id, nullptr);
    EXPECT_TRUE(ids.insert(det.id).second) << "duplicate id " << det.id;
    EXPECT_NE(std::string(det.id), "");
    EXPECT_NE(std::string(det.title), "");
    EXPECT_NE(std::string(det.reference), "");
    // IDs lead with the governing source: the paper section for the
    // filter-error classes, TAMPER- for the middlebox threat model.
    const std::string id = det.id;
    EXPECT_TRUE(id.rfind("SEC3.", 0) == 0 || id.rfind("TAMPER-", 0) == 0) << id;
    EXPECT_NE(std::string(to_string(det.severity)), "");
    EXPECT_EQ(find_calibration_detector(det.id), &det);
  }
  EXPECT_EQ(find_calibration_detector("no-such-detector"), nullptr);
}

TEST(CalibrationRegistry, SeveritiesSpanFilterErrorsAndTampering) {
  std::map<CalSeverity, int> by_severity;
  for (const auto& det : calibration_registry()) ++by_severity[det.severity];
  EXPECT_GT(by_severity[CalSeverity::kUntrustworthyOrder], 0);
  EXPECT_GT(by_severity[CalSeverity::kUntrustworthyClock], 0);
  EXPECT_GT(by_severity[CalSeverity::kMissingRecords], 0);
  EXPECT_GT(by_severity[CalSeverity::kTampering], 0);
}

TEST(CalibrationRegistry, ScenarioMatrixCoversEveryDetector) {
  // id -> (violating count, clean count)
  std::map<std::string, std::pair<int, int>> coverage;
  for (const auto& s : sim::tampering_scenarios()) {
    ASSERT_NE(find_calibration_detector(s.detector_id), nullptr)
        << s.name << " targets unregistered detector " << s.detector_id;
    auto& [violating, clean] = coverage[s.detector_id];
    (s.trips ? violating : clean) += 1;
  }
  for (const auto& det : calibration_registry()) {
    const auto it = coverage.find(det.id);
    ASSERT_NE(it, coverage.end()) << "no scenario for " << det.id;
    EXPECT_GE(it->second.first, 1) << "no violating scenario for " << det.id;
    EXPECT_GE(it->second.second, 1) << "no clean scenario for " << det.id;
  }
}

TEST(CalibrationRegistry, ReportsAlwaysCoverTheWholeRegistryInOrder) {
  for (const auto& s : sim::tampering_scenarios()) {
    const CalibrationReport rep = calibrate(sim::make_tampering_trace(s));
    const auto& registry = calibration_registry();
    ASSERT_EQ(rep.detectors.size(), registry.size()) << s.name;
    for (std::size_t i = 0; i < registry.size(); ++i)
      EXPECT_EQ(rep.detectors[i].detector, &registry[i]) << s.name;
  }
}

TEST(CalibrationRegistry, ViolationScenariosFailExactlyTheirDetector) {
  for (const auto& s : sim::tampering_scenarios()) {
    if (!s.trips) continue;
    const CalibrationReport rep = calibrate(sim::make_tampering_trace(s));
    for (const auto& r : rep.detectors) {
      if (std::string(r.detector->id) == s.detector_id)
        EXPECT_EQ(r.verdict, Verdict::kFail)
            << s.name << ": " << r.detector->id << "\n" << rep.summary();
      else
        EXPECT_NE(r.verdict, Verdict::kFail)
            << s.name << " also fails " << r.detector->id << "\n"
            << rep.summary();
    }
    // Any failing detector poisons the trace, tampering included -- the
    // trustworthy() derivation runs off the registry severities.
    EXPECT_FALSE(rep.trustworthy()) << s.name;
  }
}

TEST(CalibrationRegistry, CleanScenariosExerciseAndPassTheirDetector) {
  for (const auto& s : sim::tampering_scenarios()) {
    if (s.trips) continue;
    const CalibrationReport rep = calibrate(sim::make_tampering_trace(s));
    EXPECT_TRUE(rep.trustworthy()) << s.name << "\n" << rep.summary();
    const CalDetectorResult* target = rep.find(s.detector_id);
    ASSERT_NE(target, nullptr) << s.name;
    // Clean means judged-and-passed, not silent: the scenario must carry
    // the signal (a genuine RST, a locked TTL baseline, a faithful
    // retransmission...) its detector needs to say PASS.
    EXPECT_EQ(target->verdict, Verdict::kPass) << s.name << "\n" << rep.summary();
  }
}

/// Streaming (kFull and kBounded) verdict vectors must match materialized
/// calibrate() over every scenario trace. These traces are small enough
/// that bounded mode never evicts, so exactness must hold everywhere; the
/// duplication-violating scenarios are the one place streaming reports
/// from the unstripped stream and flags needs_materialized_rerun.
TEST(CalibrationRegistry, StreamingVerdictsMatchMaterializedCalibrate) {
  for (const auto& s : sim::tampering_scenarios()) {
    const trace::Trace tr = sim::make_tampering_trace(s);
    const CalibrationReport offline = calibrate(tr);
    for (const auto mode :
         {AnnotationBuilder::Mode::kFull, AnnotationBuilder::Mode::kBounded}) {
      AnnotationBuilder::Options bopts;
      bopts.mode = mode;
      bopts.local_is_sender = !s.receiver_vantage;
      AnnotationBuilder builder(std::move(bopts));
      trace::InMemorySource source(tr);
      while (auto rec = source.next()) builder.add(*rec);
      const StreamSummary summary = builder.finish_summary();
      // The one-pass summary must agree with every offline detector run on
      // the drained trace (this internally re-finalizes the registry
      // vector and compares verdict by verdict).
      EXPECT_EQ(diff_stream_summary(summary, tr), "") << s.name;
      EXPECT_TRUE(summary.duplication_is_exact) << s.name;
      ASSERT_EQ(summary.calibration.detectors.size(), offline.detectors.size())
          << s.name;
      // The target detector's verdict must survive the stream/materialize
      // split even when duplicates get stripped in the materialized pass.
      const CalDetectorResult* streamed = summary.calibration.find(s.detector_id);
      const CalDetectorResult* mat = offline.find(s.detector_id);
      ASSERT_NE(streamed, nullptr) << s.name;
      ASSERT_NE(mat, nullptr) << s.name;
      EXPECT_EQ(streamed->verdict, mat->verdict) << s.name;
      if (!summary.needs_materialized_rerun) {
        for (std::size_t i = 0; i < offline.detectors.size(); ++i) {
          EXPECT_EQ(summary.calibration.detectors[i].verdict,
                    offline.detectors[i].verdict)
              << s.name << " " << offline.detectors[i].detector->id;
          EXPECT_EQ(summary.calibration.detectors[i].evidence,
                    offline.detectors[i].evidence)
              << s.name << " " << offline.detectors[i].detector->id;
        }
      }
    }
  }
}

/// Bounded mode must surrender (not guess) when the payload-digest window
/// evicts state a verdict would have needed: the inconsistent-retx verdict
/// becomes kNotExercised carrying the eviction sentinel.
TEST(CalibrationRegistry, BoundedRetxEvictionSurrendersVerdict) {
  CalibrationEvaluator::Config cfg;
  cfg.bounded = true;
  cfg.tampering.digest_window = 2;
  CalibrationEvaluator eval(std::move(cfg));
  auto data = [](std::int64_t us, std::uint32_t seq, std::uint64_t digest) {
    trace::PacketRecord rec;
    rec.timestamp = util::TimePoint(us);
    rec.src = {0x0a000001, 1000};
    rec.dst = {0x0a000002, 2000};
    rec.tcp.seq = seq;
    rec.tcp.ack = 1;
    rec.tcp.flags.ack = true;
    rec.tcp.payload_len = 100;
    rec.ttl = 64;
    rec.payload_digest = digest;
    rec.payload_digest_known = true;
    return rec;
  };
  // Three distinct keys overflow the 2-entry window (evicting seq=1000),
  // then a mangled "retransmission" of the evicted key arrives.
  eval.add(data(1'000'000, 1000, 0xAA), true);
  eval.add(data(2'000'000, 1100, 0xBB), true);
  eval.add(data(3'000'000, 1200, 0xCC), true);
  eval.add(data(4'000'000, 1000, 0xFF), true);
  const auto res = eval.finish();
  EXPECT_TRUE(res.report.tampering.retx_window_evicted);
  const CalDetectorResult* retx = res.report.find("TAMPER-inconsistent-retx");
  ASSERT_NE(retx, nullptr);
  EXPECT_EQ(retx->verdict, Verdict::kNotExercised);
  EXPECT_EQ(retx->evidence, kCalibrationEvictedEvidence);
}

}  // namespace
}  // namespace tcpanaly::core
