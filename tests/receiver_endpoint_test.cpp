// Unit tests for the TcpReceiver endpoint: handshake, ack policies (paper
// section 9.1), out-of-order handling, corruption discard, FIN teardown.
// The receiver is driven directly with synthetic segments over an event
// loop -- no network in between.
#include <gtest/gtest.h>

#include <vector>

#include "netsim/event_loop.hpp"
#include "tcp/profiles.hpp"
#include "tcp/receiver.hpp"

namespace tcpanaly::tcp {
namespace {

using trace::TcpSegment;
using util::Duration;
using util::TimePoint;

struct Harness {
  explicit Harness(const TcpProfile& profile, ReceiverConfig cfg = {}) {
    cfg.local = {0x0a000002, 2000};
    cfg.remote = {0x0a000001, 1000};
    receiver = std::make_unique<TcpReceiver>(loop, profile, cfg,
                                             [this](const TcpSegment& seg) {
                                               sent_at.push_back(loop.now());
                                               sent.push_back(seg);
                                             });
    // Handshake: SYN in, SYN-ack out, establishing ack in.
    TcpSegment syn;
    syn.seq = 1000;
    syn.flags.syn = true;
    syn.mss_option = 512;
    deliver_at(TimePoint(0), syn);
    TcpSegment est;
    est.seq = 1001;
    est.ack = sent.front().seq + 1;
    est.flags.ack = true;
    deliver_at(TimePoint(100), est);
  }

  void deliver_at(TimePoint at, TcpSegment seg, bool corrupted = false) {
    loop.schedule_at(at, [this, seg, corrupted] { receiver->on_segment(seg, corrupted); });
    // Bounded run: the BSD heartbeat free-runs forever, so never drain the
    // whole queue.
    loop.run_until(at);
  }

  void data_at(std::int64_t us, trace::SeqNum seq, std::uint32_t len,
               bool corrupted = false) {
    TcpSegment seg;
    seg.seq = seq;
    seg.ack = 50001;
    seg.flags.ack = true;
    seg.payload_len = len;
    deliver_at(TimePoint(us), seg, corrupted);
  }

  /// Acks sent after the handshake SYN-ack.
  std::vector<TcpSegment> acks() const {
    return {sent.begin() + 1, sent.end()};
  }
  std::vector<TimePoint> ack_times() const { return {sent_at.begin() + 1, sent_at.end()}; }

  sim::EventLoop loop;
  std::unique_ptr<TcpReceiver> receiver;
  std::vector<TcpSegment> sent;
  std::vector<TimePoint> sent_at;
};

TEST(Receiver, SynAckCarriesMssUnlessSuppressed) {
  Harness h(generic_reno());
  ASSERT_FALSE(h.sent.empty());
  EXPECT_TRUE(h.sent[0].flags.syn);
  EXPECT_TRUE(h.sent[0].flags.ack);
  EXPECT_TRUE(h.sent[0].mss_option.has_value());

  ReceiverConfig cfg;
  cfg.omit_mss_option = true;
  Harness h2(generic_reno(), cfg);
  EXPECT_FALSE(h2.sent[0].mss_option.has_value());
}

TEST(Receiver, AcksEveryTwoFullSegmentsImmediately) {
  Harness h(generic_reno());
  h.data_at(10'000, 1001, 512);
  EXPECT_TRUE(h.acks().empty());  // one segment: delayed
  h.data_at(11'000, 1513, 512);
  ASSERT_EQ(h.acks().size(), 1u);
  EXPECT_EQ(h.acks()[0].ack, 2025u);
  EXPECT_EQ(h.ack_times()[0], TimePoint(11'000));
}

TEST(Receiver, BsdHeartbeatAcksSingleSegmentAtTick) {
  ReceiverConfig cfg;
  cfg.heartbeat_phase = Duration::millis(50);
  Harness h(generic_reno(), cfg);
  h.data_at(10'000, 1001, 512);
  // Heartbeat ticks at 100us (establish) + 50ms + k*200ms.
  h.loop.run_until(TimePoint(400'000));
  ASSERT_EQ(h.acks().size(), 1u);
  EXPECT_EQ(h.acks()[0].ack, 1513u);
  EXPECT_EQ(h.ack_times()[0], TimePoint(250'100));
}

TEST(Receiver, SolarisTimerAcksAfter50ms) {
  Harness h(*find_profile("Solaris 2.4"));
  h.data_at(10'000, 1001, 512);
  h.loop.run_until(TimePoint(400'000));
  ASSERT_EQ(h.acks().size(), 1u);
  EXPECT_EQ(h.ack_times()[0], TimePoint(60'000));
}

TEST(Receiver, LinuxAcksEveryPacketImmediately) {
  Harness h(*find_profile("Linux 1.0"));
  h.data_at(10'000, 1001, 512);
  h.data_at(20'000, 1513, 512);
  ASSERT_EQ(h.acks().size(), 2u);
  EXPECT_EQ(h.ack_times()[0], TimePoint(10'000));
  EXPECT_EQ(h.ack_times()[1], TimePoint(20'000));
}

TEST(Receiver, OutOfOrderDataTriggersImmediateDupAck) {
  Harness h(generic_reno());
  h.data_at(10'000, 1513, 512);  // hole at 1001
  ASSERT_EQ(h.acks().size(), 1u);
  EXPECT_EQ(h.acks()[0].ack, 1001u);
  EXPECT_EQ(h.ack_times()[0], TimePoint(10'000));
  EXPECT_EQ(h.receiver->stats().out_of_order_packets, 1u);
}

TEST(Receiver, HoleFillAcksImmediatelyAndJumps) {
  Harness h(generic_reno());
  h.data_at(10'000, 1513, 512);  // ooo
  h.data_at(20'000, 1001, 512);  // fills the hole
  ASSERT_EQ(h.acks().size(), 2u);
  EXPECT_EQ(h.acks()[1].ack, 2025u);
  EXPECT_EQ(h.ack_times()[1], TimePoint(20'000));
}

TEST(Receiver, WhollyOldDataGetsDupAck) {
  Harness h(generic_reno());
  h.data_at(10'000, 1001, 512);
  h.data_at(11'000, 1513, 512);  // normal ack at 2025
  h.data_at(30'000, 1001, 512);  // spurious retransmission
  ASSERT_EQ(h.acks().size(), 2u);
  EXPECT_EQ(h.acks()[1].ack, 2025u);
  EXPECT_EQ(h.receiver->stats().duplicate_data_bytes, 512u);
}

TEST(Receiver, CorruptedSegmentSilentlyDiscarded) {
  Harness h(generic_reno());
  h.data_at(10'000, 1001, 512, /*corrupted=*/true);
  h.loop.run_until(TimePoint(500'000));
  EXPECT_TRUE(h.acks().empty());  // no ack obligation of any kind
  EXPECT_EQ(h.receiver->stats().corrupted_discarded, 1u);
  EXPECT_EQ(h.receiver->rcv_nxt(), 1001u);
}

TEST(Receiver, FinAckedImmediatelyAndCloses) {
  Harness h(generic_reno());
  h.data_at(10'000, 1001, 512);
  TcpSegment fin;
  fin.seq = 1513;
  fin.flags.fin = true;
  fin.flags.ack = true;
  fin.ack = 50001;
  h.deliver_at(TimePoint(20'000), fin);
  ASSERT_FALSE(h.acks().empty());
  EXPECT_EQ(h.acks().back().ack, 1514u);  // data + FIN octet
  EXPECT_TRUE(h.receiver->finished());
}

TEST(Receiver, StretchAckBugBatchesFourSegments) {
  // Solaris 2.3: every Nth ack waits for four segments.
  TcpProfile p = *find_profile("Solaris 2.3");
  p.stretch_ack_every = 1;  // force the bug on every opportunity
  Harness h(p);
  for (int i = 0; i < 4; ++i) h.data_at(10'000 + 1'000 * i, 1001 + 512 * i, 512);
  ASSERT_EQ(h.acks().size(), 1u);
  EXPECT_EQ(h.acks()[0].ack, 1001u + 4 * 512u);
}

TEST(Receiver, RetransmittedSynGetsFreshSynAck) {
  Harness h(generic_reno());
  TcpSegment syn;
  syn.seq = 1000;
  syn.flags.syn = true;
  syn.mss_option = 512;
  h.deliver_at(TimePoint(50'000), syn);
  // Original SYN-ack plus the re-sent one.
  int synacks = 0;
  for (const auto& seg : h.sent)
    if (seg.flags.syn && seg.flags.ack) ++synacks;
  EXPECT_EQ(synacks, 2);
}

TEST(Receiver, OfferedWindowIsConstantBuffer) {
  ReceiverConfig cfg;
  cfg.recv_buffer = 4096;
  Harness h(generic_reno(), cfg);
  h.data_at(10'000, 1001, 512);
  h.data_at(11'000, 1513, 512);
  ASSERT_FALSE(h.acks().empty());
  EXPECT_EQ(h.acks()[0].window, 4096u);
}

}  // namespace
}  // namespace tcpanaly::tcp
