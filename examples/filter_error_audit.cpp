// Audit a packet trace for measurement errors before trusting it
// (paper section 3: "it is crucial in any study based on packet filter
// measurement to consider the forms of measurement errors").
//
// Usage:
//   filter_error_audit <trace.pcap> [--receiver]   audit a capture
//   filter_error_audit --demo                      audit four synthetic
//                                                  traces, one per error
#include <cstdio>
#include <cstring>

#include "core/calibration.hpp"
#include "tcp/profiles.hpp"
#include "tcp/session.hpp"
#include "trace/pcap_io.hpp"

using namespace tcpanaly;

namespace {

void audit(const char* label, const trace::Trace& tr) {
  std::printf("--- %s (%zu records) ---\n", label, tr.size());
  std::printf("%s\n", core::calibrate(tr).summary().c_str());
}

void demo() {
  auto make = [](auto mutate) {
    tcp::SessionConfig cfg = tcp::default_session();
    cfg.sender_profile = tcp::generic_reno();
    cfg.receiver_profile = cfg.sender_profile;
    cfg.fwd_path.loss_prob = 0.01;  // real loss present: must not be blamed
    cfg.seed = 99;
    mutate(cfg);
    return tcp::run_session(cfg).sender_trace;
  };
  audit("clean filter", make([](tcp::SessionConfig&) {}));
  audit("filter dropping 3% of records",
        make([](tcp::SessionConfig& c) { c.sender_filter.drop_prob = 0.03; }));
  audit("IRIX-style double copies",
        make([](tcp::SessionConfig& c) { c.sender_filter.irix_double_copy = true; }));
  audit("Solaris-style resequencing", make([](tcp::SessionConfig& c) {
          c.sender_filter.reseq_prob = 0.15;
          c.sender_filter.reseq_delay = util::Duration::micros(700);
        }));
  audit("clock stepped backwards mid-trace", make([](tcp::SessionConfig& c) {
          c.sender_filter.clock.set_skew_ppm(250.0);
          c.sender_filter.clock.add_step(util::TimePoint(400'000),
                                         util::Duration::millis(-30));
        }));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "--demo") == 0) {
    demo();
    return 0;
  }
  const bool receiver_side = argc >= 3 && std::strcmp(argv[2], "--receiver") == 0;
  try {
    auto loaded = trace::read_capture_file(argv[1], /*local_is_sender=*/!receiver_side);
    audit(argv[1], loaded.trace);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error reading %s: %s\n", argv[1], e.what());
    return 1;
  }
  return 0;
}
