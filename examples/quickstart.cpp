// Quickstart: the full tcpanaly pipeline in ~60 lines.
//
//   1. Simulate a TCP bulk transfer over a lossy path (the substrate that
//      stands in for the paper's real tcpdump corpus).
//   2. Round-trip the sender-side trace through a real pcap file -- the
//      file opens in tcpdump/wireshark.
//   3. Analyze it: calibrate the measurement, then match the behavior
//      against every TCP implementation tcpanaly knows.
//
// Build & run:  ./build/examples/quickstart [output.pcap]
#include <cstdio>

#include "core/analyze.hpp"
#include "tcp/profiles.hpp"
#include "tcp/session.hpp"
#include "trace/pcap_io.hpp"

using namespace tcpanaly;

int main(int argc, char** argv) {
  const char* pcap_path = argc > 1 ? argv[1] : "quickstart_sender.pcap";

  // 1. A 100 KB transfer from a BSDI sender over a 1 MB/s, 40 ms-RTT path
  //    with 2% loss.
  tcp::SessionConfig cfg = tcp::default_session();
  cfg.sender_profile = *tcp::find_profile("BSDI");
  cfg.receiver_profile = cfg.sender_profile;
  cfg.fwd_path.loss_prob = 0.02;
  cfg.seed = 42;
  tcp::SessionResult session = tcp::run_session(cfg);
  std::printf("simulated transfer: %s, %llu data packets, %llu retransmissions\n",
              session.completed ? "completed" : "DID NOT COMPLETE",
              static_cast<unsigned long long>(session.sender_stats.data_packets),
              static_cast<unsigned long long>(session.sender_stats.retransmissions));

  // 2. Write the sender-side trace as a pcap file and read it back.
  trace::write_pcap_file(pcap_path, session.sender_trace);
  trace::PcapReadResult loaded = trace::read_capture_file(pcap_path, /*local_is_sender=*/true);
  std::printf("wrote %s (%zu records; reloaded %zu, %zu skipped)\n\n", pcap_path,
              session.sender_trace.size(), loaded.trace.size(), loaded.skipped_frames);

  // 3. Run the analyzer on the reloaded trace.
  core::TraceAnalysis analysis = core::analyze_trace(loaded.trace);
  std::printf("%s", analysis.render().c_str());

  const auto& best = analysis.match.best();
  std::printf("\nbest fit: %s (%s)\n", best.profile.name.c_str(),
              core::to_string(best.fit));
  return 0;
}
