// Actively probe a TCP implementation and print its inferred
// characteristics -- the paper's closing suggestion made concrete:
// controlled stimuli (dead paths, surgical single-packet drops, peers
// withholding the MSS option, paced arrivals) with every answer read back
// from the packet traces alone.
//
// Usage: active_probe [implementation-name]
//        active_probe --all
#include <cstdio>
#include <cstring>

#include "probe/probe.hpp"
#include "tcp/profiles.hpp"

using namespace tcpanaly;

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--all") == 0) {
    for (const auto& impl : tcp::all_profiles()) {
      std::printf("=== %s ===\n%s\n", impl.name.c_str(),
                  probe::probe_implementation(impl).render().c_str());
    }
    return 0;
  }
  const char* name = argc > 1 ? argv[1] : "Solaris 2.4";
  auto impl = tcp::find_profile(name);
  if (!impl) {
    std::fprintf(stderr, "unknown implementation '%s'; known:\n", name);
    for (const auto& p : tcp::all_profiles())
      std::fprintf(stderr, "  %s\n", p.name.c_str());
    return 1;
  }
  std::printf("probing %s as a black box...\n\n", name);
  std::printf("%s", probe::probe_implementation(*impl).render().c_str());
  return 0;
}
