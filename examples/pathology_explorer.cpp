// Explore the paper's three headline pathologies interactively: run each
// scenario, print the connection statistics and an ASCII time-sequence
// plot (the same visualization the paper's figures use).
//
// Usage: pathology_explorer [net3|linux|solaris|all]
#include <cstdio>
#include <cstring>

#include "tcp/profiles.hpp"
#include "tcp/session.hpp"
#include "trace/trace.hpp"

using namespace tcpanaly;

namespace {

void report(const char* title, const tcp::SessionResult& r) {
  std::printf("=== %s ===\n", title);
  std::printf("data packets %llu | retransmissions %llu | timeouts %llu | "
              "fast retx %llu | flight bursts %llu | network drops %llu\n",
              static_cast<unsigned long long>(r.sender_stats.data_packets),
              static_cast<unsigned long long>(r.sender_stats.retransmissions),
              static_cast<unsigned long long>(r.sender_stats.timeouts),
              static_cast<unsigned long long>(r.sender_stats.fast_retransmits),
              static_cast<unsigned long long>(r.sender_stats.flight_retransmit_bursts),
              static_cast<unsigned long long>(r.fwd_network_drops));
  std::printf("receiver got %llu duplicate bytes; transfer took %s\n",
              static_cast<unsigned long long>(r.receiver_stats.duplicate_data_bytes),
              r.elapsed.to_string().c_str());
  std::printf("%s\n", trace::render_seqplot(trace::extract_seqplot(r.sender_trace), 76, 20)
                          .c_str());
}

void net3() {
  tcp::SessionConfig cfg = tcp::default_session();
  cfg.sender_profile = *tcp::find_profile("BSDI");
  cfg.receiver_profile = cfg.sender_profile;
  cfg.receiver.omit_mss_option = true;  // the trigger: SYN-ack without MSS
  cfg.receiver.recv_buffer = 16 * 1024;
  cfg.sender.send_buffer = 64 * 1024;
  cfg.sender.transfer_bytes = 64 * 1024;
  cfg.fwd_path.bottleneck_rate_bytes_per_sec = 180'000.0;
  cfg.fwd_path.bottleneck_queue_limit = 12;
  report("Net/3 uninitialized cwnd: 30-packet opening burst (Figure 3)",
         tcp::run_session(cfg));
}

void linux_storm() {
  tcp::SessionConfig cfg = tcp::default_session();
  cfg.sender_profile = *tcp::find_profile("Linux 1.0");
  cfg.receiver_profile = cfg.sender_profile;
  cfg.sender.transfer_bytes = 64 * 1024;
  cfg.fwd_path.prop_delay = util::Duration::millis(80);
  cfg.rev_path.prop_delay = util::Duration::millis(80);
  cfg.fwd_path.loss_prob = 0.03;
  cfg.fwd_path.reorder_prob = 0.02;
  cfg.fwd_path.reorder_extra = util::Duration::millis(30);
  cfg.seed = 2;
  report("Linux 1.0: whole-flight retransmission storms (Figure 4)",
         tcp::run_session(cfg));
}

void solaris() {
  tcp::SessionConfig cfg = tcp::default_session();
  cfg.sender_profile = *tcp::find_profile("Solaris 2.4");
  cfg.receiver_profile = cfg.sender_profile;
  cfg.sender.transfer_bytes = 64 * 1024;
  cfg.fwd_path.prop_delay = util::Duration::millis(340);  // RTT ~680 ms
  cfg.rev_path.prop_delay = util::Duration::millis(340);
  report("Solaris 2.3/2.4: premature RTO on a 680 ms path (Figure 5)",
         tcp::run_session(cfg));
}

}  // namespace

int main(int argc, char** argv) {
  const char* which = argc > 1 ? argv[1] : "all";
  const bool all = std::strcmp(which, "all") == 0;
  if (all || !std::strcmp(which, "net3")) net3();
  if (all || !std::strcmp(which, "linux")) linux_storm();
  if (all || !std::strcmp(which, "solaris")) solaris();
  return 0;
}
