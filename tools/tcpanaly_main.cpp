// tcpanaly: command-line packet-trace analysis of TCP implementations.
//
// The tool the paper describes (and promised to release): point it at a
// pcap capture of a TCP bulk transfer taken at or near one endpoint, and
// it reports (a) whether the trace itself can be trusted -- packet-filter
// drops, added duplicates, resequencing, time travel -- and (b) which TCP
// implementations the endpoint's behavior is consistent with, and exactly
// where it deviates from the rest.
//
// Usage:
//   tcpanaly [options] <trace.pcap>
//   tcpanaly --batch <dir> [--jobs N] [options]
//
// Options:
//   --receiver           the traced (local) host is the data RECEIVER
//                        (default: sender)
//   --batch <dir>        analyze every pcap/pcapng in <dir> in parallel:
//                        one summary row per trace plus aggregate
//                        identification/confusion counts (ground truth is
//                        taken from make_corpus-style file names when
//                        present). Each capture is STREAMED through the
//                        flow demultiplexer: records route to a per-
//                        connection incremental builder as they decode,
//                        and every connection gets its own analysis --
//                        multi-connection captures yield one "flow" JSON
//                        row per connection.
//   --recursive          with --batch: descend into subdirectories; rows
//                        are keyed by the path relative to <dir>
//   --jobs N             worker threads for --batch (default: hardware
//                        concurrency)
//   --max-rss-mb N       with --batch: soft memory ceiling. New traces are
//                        admitted only while the in-flight estimate (sum
//                        of admitted file sizes) stays under N MiB; one
//                        oversized trace still runs, alone.
//   --keep-going         with --batch: exit 0 even when some captures
//                        failed to load (their rows still carry the
//                        error). Default: any failed capture fails the
//                        run with exit 1.
//   --json[=FILE]        emit machine-readable reports (schema_version'd
//                        JSON). Single-trace mode writes one document;
//                        --batch writes NDJSON: one row per trace plus a
//                        final aggregate document. Without =FILE the JSON
//                        owns stdout and the human-readable output is
//                        suppressed.
//   --candidates a,b,c   comma-separated implementation names to test
//                        (default: all known; --list shows them)
//   --summary            print per-connection statistics (tcptrace-style)
//   --conformance        render the flow's RFC1122/[Ja88] requirement
//                        vector (stable IDs, MUST/SHOULD levels)
//   --conformance-slack-ms N
//                        timing slack for conformance checks (default 30):
//                        how much measured delays may exceed a requirement's
//                        bound before it FAILs
//   --fail-on-nonconformant[=must|should]
//                        with --batch: exit non-zero when any flow failed a
//                        MUST requirement (=should also counts SHOULD
//                        failures); composes with --keep-going, which only
//                        forgives load failures
//   --fail-on-untrustworthy
//                        with --batch: exit 5 when any flow's calibration
//                        verdict is untrustworthy (filter artifacts or
//                        middlebox tampering); composes with --keep-going
//   --calibrate-only     stop after the measurement-error report
//   --seqplot            print an ASCII time-sequence plot of the trace
//   --report <name>      print the detailed report for one candidate
//   --list               list known implementations and exit
//   --version            print tool version and report schema version
//   --strip-duplicates <out.pcap>
//                        write the deduplicated trace to a new pcap file
//   --pair <other.pcap>  the OTHER endpoint's trace of the same connection:
//                        adds trace-pair clock calibration (relative skew,
//                        step adjustments) per [Pa97b]
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/analyze.hpp"
#include "core/calibration.hpp"
#include "core/stream_analysis.hpp"
#include "core/clock_pair.hpp"
#include "core/conformance.hpp"
#include "core/path_metrics.hpp"
#include "core/receiver_analyzer.hpp"
#include "core/sender_analyzer.hpp"
#include "core/summary.hpp"
#include "corpus/calibration_rollup.hpp"
#include "corpus/conformance_rollup.hpp"
#include "corpus/naming.hpp"
#include "corpus/scan.hpp"
#include "daemon/capture_job.hpp"
#include "report/report.hpp"
#include "tcp/profiles.hpp"
#include "trace/pcap_io.hpp"
#include "trace/trace.hpp"
#include "util/mem_tracker.hpp"
#include "util/parallel.hpp"
#include "util/stage_timer.hpp"
#include "util/table.hpp"

using namespace tcpanaly;

namespace {

/// Where --json documents go: stdout (which then carries ONLY JSON) or a
/// file (human-readable output stays on stdout).
struct JsonSink {
  bool enabled = false;
  std::string path;  ///< empty => stdout

  bool owns_stdout() const { return enabled && path.empty(); }
};

/// Write `text` to the sink. Returns false (with a message on stderr) when
/// the file cannot be written.
bool write_json(const JsonSink& sink, const std::string& text) {
  if (sink.path.empty()) {
    std::fputs(text.c_str(), stdout);
    return true;
  }
  std::ofstream out(sink.path);
  out << text;
  out.close();
  if (!out) {
    std::fprintf(stderr, "--json=%s: cannot write file\n", sink.path.c_str());
    return false;
  }
  return true;
}

int list_implementations() {
  util::TextTable table({"name", "versions", "lineage"});
  for (const auto& p : tcp::all_profiles()) {
    const char* lineage = p.lineage == tcp::Lineage::kTahoe   ? "Tahoe"
                          : p.lineage == tcp::Lineage::kReno ? "Reno"
                                                             : "independent";
    table.add_row({p.name, p.versions, lineage});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

std::vector<tcp::TcpProfile> parse_candidates(const std::string& arg, bool* ok) {
  // Report EVERY unrecognized name (not just the first) before failing, so
  // a typo-riddled list is fixable in one pass; an all-typos list must not
  // silently fall back to the full registry.
  std::vector<tcp::TcpProfile> out;
  std::vector<std::string> unknown;
  std::size_t pos = 0;
  while (pos <= arg.size()) {
    const std::size_t comma = arg.find(',', pos);
    const std::string name =
        arg.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!name.empty()) {
      auto p = tcp::find_profile(name);
      if (!p) {
        unknown.push_back(name);
      } else {
        out.push_back(std::move(*p));
      }
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  for (const auto& name : unknown)
    std::fprintf(stderr, "unknown implementation: '%s' (try --list)\n", name.c_str());
  if (out.empty() && unknown.empty())
    std::fprintf(stderr, "--candidates: no implementation names given (try --list)\n");
  *ok = unknown.empty() && !out.empty();
  return out;
}

// --batch: analyze every capture in a directory in parallel. Each capture
// runs through the flow demultiplexer, so multi-connection captures yield
// one "flow" NDJSON row per connection plus the per-capture "trace" row.
//
// The per-capture work is daemon::run_capture_job -- the exact pipeline
// tcpanalyd schedules -- fanned out over a util::Scheduler, so --batch is
// a thin one-shot client of the daemon's engine.

/// --fail-on-nonconformant levels.
enum class FailOn { kNone, kMust, kShould };

int run_batch(const std::string& dir, bool receiver_flag,
              const std::vector<tcp::TcpProfile>& candidates, int jobs, bool recursive,
              std::uint64_t max_rss_mb, bool keep_going, FailOn fail_on,
              bool fail_on_untrustworthy,
              const core::ConformanceOptions& conformance, const JsonSink& json) {
  namespace fs = std::filesystem;
  report::BatchAggregate agg;
  corpus::ScanResult scan;
  {
    auto scope = agg.timings.stage("scan");
    std::error_code ec;
    scan = corpus::scan_capture_files(dir, recursive, ec);
    if (ec) {
      std::fprintf(stderr, "--batch %s: %s\n", dir.c_str(), ec.message().c_str());
      return 1;
    }
    if (scan.files.empty()) {
      std::fprintf(stderr, "--batch %s: no .pcap/.pcapng files found%s\n", dir.c_str(),
                   recursive ? "" : " (subdirectories need --recursive)");
      return 1;
    }
    // A row key must name exactly one file: duplicates (symlinked copies,
    // case-folded key clashes) were dropped deterministically -- say so
    // instead of silently emitting two rows under one key.
    for (const auto& c : scan.collisions)
      std::fprintf(stderr, "--batch: key '%s': keeping %s, dropping duplicate %s\n",
                   c.key.c_str(), c.kept.string().c_str(), c.dropped.string().c_str());
    scope.counter("files", scan.files.size());
    scope.counter("key_collisions", scan.collisions.size());
  }
  std::vector<std::size_t> order(scan.files.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  // The file-level fan-out owns the parallelism; per-trace candidate
  // matching runs serially inside each worker to avoid oversubscription.
  // Soft memory ceiling: one MemGate admits captures against their file
  // size (a conservative stand-in for the decoded footprint) across ALL
  // workers, and the streaming builders report their actual logical bytes
  // into the shared tracker.
  daemon::CaptureJobOptions jopts;
  jopts.candidates = candidates;
  jopts.receiver_fallback = receiver_flag;
  jopts.analyze.match.jobs = 1;
  jopts.analyze.conformance = conformance;
  util::MemGate gate(max_rss_mb * (1024ull * 1024ull));
  util::MemTracker stream_mem;
  jopts.gate = &gate;
  jopts.stream_mem = &stream_mem;
  std::vector<daemon::CaptureJobResult> rows;
  {
    auto scope = agg.timings.stage("analyze");
    util::Scheduler sched(util::resolve_jobs(jobs));
    rows = util::parallel_map_on(sched, order, [&](std::size_t file_idx) {
      return daemon::run_capture_job({scan.files[file_idx], scan.keys[file_idx]}, jopts);
    });
    scope.counter("traces", rows.size());
    scope.counter("peak_stream_bytes", stream_mem.peak());
    scope.counter("peak_rss_bytes", util::peak_rss_bytes());
  }
  {
    const util::MemGate::Stats gs = gate.stats();
    agg.mem_gate.limit_bytes = gate.limit_bytes();
    agg.mem_gate.admitted = gs.admitted;
    agg.mem_gate.deferred = gs.deferred;
    agg.mem_gate.oversized = gs.oversized;
  }

  // Failed loads get a dedicated error column instead of masquerading as a
  // calibration verdict; successful rows leave it empty. The best/fit
  // columns carry the single analyzable flow's verdict; multi-flow
  // captures show their flow accounting and defer verdicts to the per-flow
  // JSON rows.
  util::TextTable table({"file", "role", "records", "flows", "calibration", "best match",
                         "fit", "penalty", "truth", "error"});
  std::size_t failed = 0, with_truth = 0, identified = 0, confused = 0;
  corpus::ConformanceRollup rollup;
  corpus::CalibrationRollup cal_rollup;
  for (const auto& row : rows) {
    for (const auto& fr : row.flow_rows) {
      if (fr.conformance)
        rollup.add(!fr.truth.empty() ? fr.truth : fr.best_name, *fr.conformance);
      if (fr.calibration)
        cal_rollup.add(!fr.truth.empty() ? fr.truth : fr.best_name, *fr.calibration);
    }
    const report::BatchTraceRecord& rec = row.trace;
    if (row.failed()) {
      ++failed;
      table.add_row({rec.trace.file, rec.trace.receiver_side ? "rcv" : "snd", "-", "-",
                     "-", "-", "-", "-", "-", rec.error});
      continue;
    }
    const report::FlowCounts& flows = *rec.flows;
    agg.flows.seen += flows.seen;
    agg.flows.analyzed += flows.analyzed;
    agg.flows.unanalyzable += flows.unanalyzable;
    agg.flows.syn_scan += flows.syn_scan;
    agg.flows.no_payload += flows.no_payload;
    agg.flows.mid_stream += flows.mid_stream;
    agg.flows.degenerate += flows.degenerate;
    std::string truth_cell = "-";
    if (!rec.trace.truth.empty()) {
      ++with_truth;
      if (rec.identified) {
        ++identified;
        truth_cell = rec.trace.truth + " OK";
      } else {
        ++confused;
        truth_cell = rec.trace.truth + " CONFUSED";
      }
    }
    const std::string flows_cell = util::strf(
        "%llu/%llu", static_cast<unsigned long long>(flows.analyzed),
        static_cast<unsigned long long>(flows.seen));
    const bool single = flows.analyzed == 1;
    table.add_row({rec.trace.file, rec.trace.receiver_side ? "rcv" : "snd",
                   std::to_string(rec.trace.records), flows_cell,
                   single ? (rec.trustworthy ? "ok" : "untrustworthy") : "-",
                   single ? rec.best_name : "-", single ? rec.best_fit : "-",
                   single ? util::strf("%.1f", rec.best_penalty) : "-", truth_cell});
  }
  if (!json.owns_stdout()) {
    std::printf("%s", table.render().c_str());
    std::printf("\n%zu trace(s) analyzed with %u worker(s): %zu with ground truth, "
                "%zu identified, %zu confused, %zu failed to load\n",
                rows.size() - failed, util::resolve_jobs(jobs), with_truth, identified,
                confused, failed);
    std::printf("%llu flow(s) seen: %llu analyzed, %llu unanalyzable "
                "(%llu syn-scan, %llu no-payload, %llu mid-stream, %llu degenerate)\n",
                (unsigned long long)agg.flows.seen, (unsigned long long)agg.flows.analyzed,
                (unsigned long long)agg.flows.unanalyzable,
                (unsigned long long)agg.flows.syn_scan,
                (unsigned long long)agg.flows.no_payload,
                (unsigned long long)agg.flows.mid_stream,
                (unsigned long long)agg.flows.degenerate);
  }
  agg.conformance = rollup.totals();
  if (!json.owns_stdout() && !rollup.empty()) {
    std::printf("\n== conformance matrix (%llu flow(s): %llu MUST, %llu SHOULD "
                "failure(s)) ==\n%s",
                (unsigned long long)agg.conformance.flows,
                (unsigned long long)agg.conformance.must_failures,
                (unsigned long long)agg.conformance.should_failures,
                rollup.render().c_str());
  }
  agg.calibration = cal_rollup.totals();
  if (!json.owns_stdout() && !cal_rollup.empty()) {
    std::printf("\n== calibration matrix (%llu flow(s): %llu untrustworthy, "
                "%llu tampering failure(s)) ==\n%s",
                (unsigned long long)agg.calibration.flows,
                (unsigned long long)agg.calibration.untrustworthy,
                (unsigned long long)agg.calibration.tampering_failures,
                cal_rollup.render().c_str());
  }

  if (json.enabled) {
    // NDJSON: per file, one compact "flow" row per finalized connection
    // followed by the capture's "trace" row; then the aggregate document.
    // The aggregate's counts are the very size_t's the text summary
    // printed.
    agg.traces_analyzed = rows.size() - failed;
    agg.workers = util::resolve_jobs(jobs);
    agg.with_truth = with_truth;
    agg.identified = identified;
    agg.confused = confused;
    agg.failed = failed;
    agg.key_collisions = scan.collisions.size();
    std::string out;
    {
      auto scope = agg.timings.stage("emit");
      std::size_t emitted = 0;
      for (const auto& row : rows) {
        for (const auto& fr : row.flow_rows) out += fr.to_json().dump() + "\n";
        out += row.trace.to_json().dump() + "\n";
        emitted += 1 + row.flow_rows.size();
      }
      scope.counter("rows", emitted);
      // The emit stage must be stopped before serializing agg itself, or
      // the aggregate's own timings section would still be running.
    }
    out += agg.to_json().dump() + "\n";
    if (!write_json(json, out)) return 1;
  }
  // --fail-on-nonconformant turns conformance failures into the exit code
  // independently of --keep-going, which only forgives load failures.
  if (fail_on != FailOn::kNone) {
    const bool nonconformant =
        agg.conformance.must_failures > 0 ||
        (fail_on == FailOn::kShould && agg.conformance.should_failures > 0);
    if (nonconformant) {
      std::fprintf(stderr,
                   "--fail-on-nonconformant: %llu MUST, %llu SHOULD failure(s)\n",
                   (unsigned long long)agg.conformance.must_failures,
                   (unsigned long long)agg.conformance.should_failures);
      return 4;
    }
  }
  // --fail-on-untrustworthy does the same for calibration: any flow whose
  // trace the registry deems untrustworthy (or tampered-with) fails the
  // run with a distinct exit code.
  if (fail_on_untrustworthy && agg.calibration.untrustworthy > 0) {
    std::fprintf(stderr,
                 "--fail-on-untrustworthy: %llu of %llu flow(s) untrustworthy "
                 "(%llu tampering failure(s))\n",
                 (unsigned long long)agg.calibration.untrustworthy,
                 (unsigned long long)agg.calibration.flows,
                 (unsigned long long)agg.calibration.tampering_failures);
    return 5;
  }
  // Any capture that failed to load fails the run -- CI must notice a
  // corrupt corpus -- unless --keep-going says partial results are fine.
  return failed == 0 || keep_going ? 0 : 1;
}

void print_sender_report(const core::SenderReport& rep) {
  std::printf("  data packets:            %zu (%zu retransmissions)\n", rep.data_packets,
              rep.retransmissions);
  std::printf("  retransmission events:   %zu timeout, %zu fast-retransmit, "
              "%zu flight-burst, %zu quirk\n",
              rep.timeout_events, rep.fast_retransmit_events, rep.flight_burst_events,
              rep.quirk_retransmissions);
  std::printf("  unexplained retransmissions: %zu", rep.unexplained_retransmissions);
  for (std::size_t idx : rep.unexplained_indices) std::printf("  [record %zu]", idx);
  std::printf("\n");
  std::printf("  window violations:       %zu\n", rep.violations.size());
  for (const auto& v : rep.violations)
    std::printf("    record %zu at %s: %llu byte(s) beyond the computed window\n",
                v.record_index, v.when.to_string().c_str(),
                static_cast<unsigned long long>(v.over_bytes));
  if (!rep.response_delays.empty())
    std::printf("  response delays:         mean %s, max %s over %zu liberations\n",
                rep.response_delays.mean().to_string().c_str(),
                rep.response_delays.max().to_string().c_str(),
                rep.response_delays.count());
  std::printf("  unexercised liberations: %zu\n", rep.lull_count);
  std::printf("  inferred sender window:  %u bytes%s\n", rep.inferred_sender_window,
              rep.sender_window_limited ? " (in force)" : " (never binding)");
  if (!rep.inferred_quenches.empty()) {
    std::printf("  inferred source quenches:");
    for (std::size_t idx : rep.inferred_quenches) std::printf(" [record %zu]", idx);
    std::printf("\n");
  }
}

void print_receiver_report(const core::ReceiverReport& rep) {
  std::printf("  data packets:      %zu\n", rep.data_packets);
  std::printf("  acks:              %zu (%zu delayed, %zu normal, %zu stretch, "
              "%zu dup, %zu window-update, %zu gratuitous)\n",
              rep.acks, rep.delayed_acks, rep.normal_acks, rep.stretch_acks, rep.dup_acks,
              rep.window_update_acks, rep.gratuitous_acks);
  if (rep.delayed_ack_delays.count() > 0)
    std::printf("  delayed-ack latency: mean %s, max %s\n",
                rep.delayed_ack_delays.mean().to_string().c_str(),
                rep.delayed_ack_delays.max().to_string().c_str());
  std::printf("  policy violations: %zu%s\n", rep.policy_violations,
              rep.distribution_mismatch ? "  [delay distribution mismatch]" : "");
  std::printf("  mandatory acks missed: %zu\n", rep.mandatory_missed);
  std::printf("  corrupted arrivals: %zu verified by checksum, %zu inferred\n",
              rep.checksum_verified_corrupt, rep.inferred_corrupt_packets);
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--receiver] [--candidates a,b,c] [--calibrate-only]\n"
               "          [--summary] [--conformance] [--conformance-slack-ms N]\n"
               "          [--json[=FILE]]\n"
               "          [--seqplot] [--report <impl>] [--strip-duplicates out.pcap]\n"
               "          [--pair other.pcap] [--list] [--version] <trace.pcap>\n"
               "       %s --batch <dir> [--jobs N] [--recursive] [--max-rss-mb N]\n"
               "          [--keep-going] [--fail-on-nonconformant[=must|should]]\n"
               "          [--fail-on-untrustworthy]\n"
               "          [--conformance-slack-ms N] [--receiver] [--candidates a,b,c]\n"
               "          [--json[=FILE]]\n",
               argv0, argv0);
  return 2;
}

struct CliOptions {
  bool receiver_side = false;
  bool calibrate_only = false;
  bool seqplot = false;
  bool summary = false;
  bool conformance = false;
  core::ConformanceOptions conformance_opts;
  std::string report_name;
  std::string strip_out;
  std::string pair_path;
  std::string path;
  JsonSink json;
};

int run_single(const CliOptions& o, const std::vector<tcp::TcpProfile>& candidates) {
  // When the JSON document owns stdout, every human-readable print is
  // suppressed so the output parses as exactly one document.
  const bool quiet = o.json.owns_stdout();
  report::AnalysisReport doc;
  doc.trace.file = o.path;
  doc.trace.receiver_side = o.receiver_side;

  auto emit = [&](int rc) {
    if (!o.json.enabled) return rc;
    if (!write_json(o.json, doc.to_json().dump(2) + "\n")) return 1;
    return rc;
  };

  trace::PcapReadResult loaded;
  {
    auto scope = doc.timings.stage("load");
    try {
      loaded = trace::read_capture_file(o.path, /*local_is_sender=*/!o.receiver_side);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", o.path.c_str(), e.what());
      doc.error = e.what();
      scope.stop();
      return emit(1);
    }
    scope.counter("records", loaded.trace.size());
    scope.counter("skipped_frames", loaded.skipped_frames);
  }
  doc.trace.records = loaded.trace.size();
  doc.trace.skipped_frames = loaded.skipped_frames;
  doc.trace.local = loaded.trace.meta().local.to_string();
  doc.trace.remote = loaded.trace.meta().remote.to_string();
  doc.trace.truth = corpus::truth_from_filename(
      std::filesystem::path(o.path).stem().string(), tcp::all_profiles());

  if (!quiet) {
    std::printf("%s: %zu TCP record(s), %zu non-TCP frame(s) skipped\n", o.path.c_str(),
                loaded.trace.size(), loaded.skipped_frames);
    std::printf("local endpoint %s (%s), remote %s\n\n",
                loaded.trace.meta().local.to_string().c_str(),
                o.receiver_side ? "receiver" : "sender",
                loaded.trace.meta().remote.to_string().c_str());
  }

  core::AnalyzeOptions aopts;
  aopts.conformance = o.conformance_opts;
  core::CleanedTrace cleaned =
      report::run_analysis(doc, loaded.trace, candidates, aopts,
                           /*run_match=*/!o.calibrate_only);

  if (o.summary && !quiet)
    std::printf("== summary ==\n%s\n", doc.summary->render().c_str());
  if (o.conformance && !quiet)
    std::printf("== conformance ==\n%s\n", doc.conformance->render().c_str());
  if (o.seqplot && !quiet)
    std::printf("%s\n", trace::render_seqplot(trace::extract_seqplot(loaded.trace), 76, 22)
                            .c_str());
  if (!quiet) std::printf("== calibration ==\n%s\n", doc.calibration->summary().c_str());

  if (!o.pair_path.empty() && !quiet) {
    try {
      auto other =
          trace::read_capture_file(o.pair_path, /*local_is_sender=*/o.receiver_side);
      const trace::Trace& snd = o.receiver_side ? other.trace : loaded.trace;
      const trace::Trace& rcv = o.receiver_side ? loaded.trace : other.trace;
      std::printf("== clock-pair calibration (vs %s) ==\n%s\n", o.pair_path.c_str(),
                  core::compare_clocks(snd, rcv).summary().c_str());
      const auto dyn = core::measure_path_dynamics(snd, rcv);
      std::printf("== path dynamics (aligned pair) ==\n"
                  "data copies: %llu sent, %llu arrived, %llu matched\n"
                  "reordered arrivals: %llu (%.2f%% of matched)\n"
                  "network replication: %llu, network loss: %llu (%.2f%% of sent)\n",
                  (unsigned long long)dyn.sender_copies,
                  (unsigned long long)dyn.receiver_copies,
                  (unsigned long long)dyn.matched, (unsigned long long)dyn.reordered,
                  100.0 * dyn.reorder_fraction(),
                  (unsigned long long)dyn.network_duplicates,
                  (unsigned long long)dyn.network_losses, 100.0 * dyn.loss_fraction());
      const auto bottleneck = core::estimate_bottleneck(rcv);
      if (bottleneck.samples > 0)
        std::printf("bottleneck estimate: %.1f KB/s (%d samples, mode %.0f%%%s)\n\n",
                    bottleneck.bytes_per_sec / 1000.0, bottleneck.samples,
                    100.0 * bottleneck.mode_fraction,
                    bottleneck.reliable ? "" : ", unreliable");
      else
        std::printf("bottleneck estimate: (insufficient arrival pairs)\n\n");
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", o.pair_path.c_str(), e.what());
      return 1;
    }
  }
  if (!o.strip_out.empty()) {
    // The analyze layer already stripped duplicates into `cleaned` (which
    // merely aliases the input when there were none) -- write that view
    // instead of re-running the strip here.
    trace::write_pcap_file(o.strip_out, cleaned.get());
    if (!quiet)
      std::printf("wrote deduplicated trace (%zu records) to %s\n\n", cleaned.size(),
                  o.strip_out.c_str());
  }
  if (o.calibrate_only) return emit(doc.calibration->trustworthy() ? 0 : 3);

  if (!quiet) std::printf("== implementation match ==\n%s\n", doc.match->render().c_str());

  if (!o.report_name.empty()) {
    auto profile = tcp::find_profile(o.report_name);
    if (!profile) {
      std::fprintf(stderr, "unknown implementation: '%s' (try --list)\n",
                   o.report_name.c_str());
      return 1;
    }
    if (!quiet) {
      std::printf("== detailed report: %s ==\n", o.report_name.c_str());
      if (o.receiver_side) {
        print_receiver_report(core::ReceiverAnalyzer(*profile).analyze(cleaned.get()));
      } else {
        print_sender_report(core::SenderAnalyzer(*profile).analyze(cleaned.get()));
        const std::uint32_t ssthresh =
            core::infer_initial_ssthresh(cleaned.get(), *profile);
        std::printf("  inferred initial ssthresh: %s\n",
                    ssthresh == 0 ? "effectively unbounded"
                                  : (std::to_string(ssthresh) + " segment(s)").c_str());
      }
    }
  }
  return emit(0);
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions o;
  std::string candidates_arg;
  std::string batch_dir;
  int jobs = 0;
  bool recursive = false;
  bool keep_going = false;
  FailOn fail_on = FailOn::kNone;
  bool fail_on_untrustworthy = false;
  std::uint64_t max_rss_mb = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") return list_implementations();
    if (arg == "--version") {
      std::printf("%s\n", report::version_line().c_str());
      return 0;
    }
    if (arg == "--receiver") {
      o.receiver_side = true;
    } else if (arg == "--calibrate-only") {
      o.calibrate_only = true;
    } else if (arg == "--summary") {
      o.summary = true;
    } else if (arg == "--conformance") {
      o.conformance = true;
    } else if (arg == "--conformance-slack-ms" && i + 1 < argc) {
      const long long ms = std::atoll(argv[++i]);
      if (ms < 0) return usage(argv[0]);
      o.conformance_opts.timing_slack = util::Duration::millis(ms);
    } else if (arg == "--fail-on-nonconformant" ||
               arg == "--fail-on-nonconformant=must") {
      fail_on = FailOn::kMust;
    } else if (arg == "--fail-on-nonconformant=should") {
      fail_on = FailOn::kShould;
    } else if (arg == "--fail-on-untrustworthy") {
      fail_on_untrustworthy = true;
    } else if (arg == "--seqplot") {
      o.seqplot = true;
    } else if (arg == "--json") {
      o.json.enabled = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      o.json.enabled = true;
      o.json.path = arg.substr(std::strlen("--json="));
      if (o.json.path.empty()) return usage(argv[0]);
    } else if (arg == "--candidates" && i + 1 < argc) {
      candidates_arg = argv[++i];
    } else if (arg == "--report" && i + 1 < argc) {
      o.report_name = argv[++i];
    } else if (arg == "--strip-duplicates" && i + 1 < argc) {
      o.strip_out = argv[++i];
    } else if (arg == "--pair" && i + 1 < argc) {
      o.pair_path = argv[++i];
    } else if (arg == "--batch" && i + 1 < argc) {
      batch_dir = argv[++i];
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (arg == "--recursive") {
      recursive = true;
    } else if (arg == "--keep-going") {
      keep_going = true;
    } else if (arg == "--max-rss-mb" && i + 1 < argc) {
      const long long mb = std::atoll(argv[++i]);
      if (mb < 0) return usage(argv[0]);
      max_rss_mb = static_cast<std::uint64_t>(mb);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      o.path = arg;
    }
  }
  if (batch_dir.empty() && o.path.empty()) return usage(argv[0]);

  std::vector<tcp::TcpProfile> candidates = tcp::all_profiles();
  if (!candidates_arg.empty()) {
    bool ok = false;
    candidates = parse_candidates(candidates_arg, &ok);
    if (!ok) return 1;
  }

  if (!batch_dir.empty())
    return run_batch(batch_dir, o.receiver_side, candidates, jobs, recursive, max_rss_mb,
                     keep_going, fail_on, fail_on_untrustworthy, o.conformance_opts,
                     o.json);
  return run_single(o, candidates);
}
