// tcpanalyd: the long-running analysis daemon. Point it at one or more
// spool directories and/or a unix-domain control socket and it streams
// NDJSON analysis rows continuously: drop capture files into a spool (or
// send ANALYZE over the socket) and per-flow "flow" rows plus per-capture
// "trace" rows appear on the output stream, punctuated by periodic
// "daemon_stats" heartbeat rows.
//
// Usage:
//   tcpanalyd [--spool DIR]... [--socket PATH] [--out FILE] [options]
//   tcpanalyd --client PATH COMMAND [ARG]
//
// Options:
//   --spool DIR          watch DIR for capture files (repeatable). Files
//                        are claimed atomically by rename into DIR/work/
//                        and moved to DIR/done/ or DIR/failed/ when their
//                        rows have been written, so two daemons can share
//                        one spool safely.
//   --socket PATH        unix-domain control socket. Line protocol:
//                          ANALYZE <path>  queue one capture (high
//                                          priority; jumps the backlog)
//                          STATUS          one-line daemon_stats JSON
//                          DRAIN           block until in-flight work is
//                                          done, then "OK drained"
//                          SHUTDOWN        finish claimed work and exit
//   --out FILE           append NDJSON rows to FILE (default: stdout)
//   --rotate-mb N        rotate --out at N MiB: the current file moves to
//                        FILE.<n> and a fresh segment starts
//   --jobs N             worker threads (default: hardware concurrency)
//   --max-rss-mb N       global admission ceiling across ALL in-flight
//                        captures (same gate as tcpanaly --batch)
//   --poll-ms N          spool scan interval (default 200)
//   --stats-interval-s S heartbeat period for daemon_stats rows
//                        (default 10; 0 disables)
//   --once               drain the spools and exit (non-zero when any
//                        capture failed) instead of running forever
//   --candidates a,b,c   implementation names to test (default: all)
//   --conformance-slack-ms N
//                        timing slack for the per-flow conformance checks
//                        (default 30); the roll-up appears in STATUS and
//                        every daemon_stats heartbeat row
//   --receiver           vantage fallback for files whose name does not
//                        encode it: local host is the data RECEIVER
//   --client PATH CMD    act as a client: send one command line to the
//                        daemon at PATH, print the response, exit 0 on an
//                        "OK"/JSON response and 1 on "ERR".
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "daemon/daemon.hpp"
#include "daemon/server.hpp"
#include "report/report.hpp"
#include "tcp/profiles.hpp"

using namespace tcpanaly;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--spool DIR]... [--socket PATH] [--out FILE]\n"
               "          [--rotate-mb N] [--jobs N] [--max-rss-mb N] [--poll-ms N]\n"
               "          [--stats-interval-s S] [--once] [--candidates a,b,c]\n"
               "          [--conformance-slack-ms N] [--receiver] [--version]\n"
               "       %s --client SOCKET COMMAND [ARG]\n",
               argv0, argv0);
  return 2;
}

std::vector<tcp::TcpProfile> parse_candidates(const std::string& arg, bool* ok) {
  std::vector<tcp::TcpProfile> out;
  std::vector<std::string> unknown;
  std::size_t pos = 0;
  while (pos <= arg.size()) {
    const std::size_t comma = arg.find(',', pos);
    const std::string name =
        arg.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!name.empty()) {
      auto p = tcp::find_profile(name);
      if (!p)
        unknown.push_back(name);
      else
        out.push_back(std::move(*p));
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  for (const auto& name : unknown)
    std::fprintf(stderr, "unknown implementation: '%s'\n", name.c_str());
  if (out.empty() && unknown.empty())
    std::fprintf(stderr, "--candidates: no implementation names given\n");
  *ok = unknown.empty() && !out.empty();
  return out;
}

/// --client: one command line out, one response line back.
int run_client(const std::string& socket_path, const std::vector<std::string>& words) {
  std::string line;
  for (const auto& w : words) {
    if (!line.empty()) line += ' ';
    line += w;
  }
  try {
    const std::string response = daemon::request(socket_path, line);
    std::printf("%s\n", response.c_str());
    return response.rfind("ERR", 0) == 0 ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
}

// SIGINT/SIGTERM ask the running daemon to stop; the handler may only
// touch the flag-like request_stop (mutex + cv notify), which is not
// strictly async-signal-safe but is the pragmatic daemon idiom short of a
// self-pipe -- the alternative (losing claimed work to a hard kill) is
// strictly worse.
daemon::Daemon* g_daemon = nullptr;

void handle_signal(int) {
  if (g_daemon) g_daemon->request_stop();
}

}  // namespace

int main(int argc, char** argv) {
  daemon::DaemonOptions opts;
  std::string candidates_arg;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--version") {
      std::printf("%s\n", report::version_line().c_str());
      return 0;
    }
    if (arg == "--client" && i + 2 < argc) {
      const std::string socket_path = argv[++i];
      std::vector<std::string> words;
      while (++i < argc) words.push_back(argv[i]);
      return run_client(socket_path, words);
    }
    if (arg == "--spool" && i + 1 < argc) {
      opts.spool_dirs.push_back(argv[++i]);
    } else if (arg == "--socket" && i + 1 < argc) {
      opts.socket_path = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      opts.out_path = argv[++i];
    } else if (arg == "--rotate-mb" && i + 1 < argc) {
      const long long mb = std::atoll(argv[++i]);
      if (mb < 0) return usage(argv[0]);
      opts.rotate_bytes = static_cast<std::uint64_t>(mb) * (1024ull * 1024ull);
    } else if (arg == "--jobs" && i + 1 < argc) {
      opts.jobs = std::atoi(argv[++i]);
    } else if (arg == "--max-rss-mb" && i + 1 < argc) {
      const long long mb = std::atoll(argv[++i]);
      if (mb < 0) return usage(argv[0]);
      opts.max_rss_mb = static_cast<std::uint64_t>(mb);
    } else if (arg == "--poll-ms" && i + 1 < argc) {
      opts.poll_ms = std::atoi(argv[++i]);
      if (opts.poll_ms <= 0) return usage(argv[0]);
    } else if (arg == "--stats-interval-s" && i + 1 < argc) {
      opts.stats_interval_s = std::atof(argv[++i]);
      if (opts.stats_interval_s < 0) return usage(argv[0]);
    } else if (arg == "--once") {
      opts.exit_when_drained = true;
    } else if (arg == "--candidates" && i + 1 < argc) {
      candidates_arg = argv[++i];
    } else if (arg == "--conformance-slack-ms" && i + 1 < argc) {
      const long long ms = std::atoll(argv[++i]);
      if (ms < 0) return usage(argv[0]);
      opts.analyze.conformance.timing_slack = util::Duration::millis(ms);
    } else if (arg == "--receiver") {
      opts.receiver_fallback = true;
    } else {
      return usage(argv[0]);
    }
  }
  // A daemon with no spool and no socket has no way to ever receive work.
  if (opts.spool_dirs.empty() && opts.socket_path.empty()) return usage(argv[0]);

  opts.candidates = tcp::all_profiles();
  if (!candidates_arg.empty()) {
    bool ok = false;
    opts.candidates = parse_candidates(candidates_arg, &ok);
    if (!ok) return 1;
  }

  try {
    daemon::Daemon d(std::move(opts));
    g_daemon = &d;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    const int rc = d.run();
    g_daemon = nullptr;
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tcpanalyd: %s\n", e.what());
    return 1;
  }
}
