// capture_fuzz: seeded fuzzing and fault-injection driver for the three
// byte-level ingestion parsers (pcap, pcapng, JSON reports).
//
//   capture_fuzz [--iterations N] [--seed S] [--parser pcap|pcapng|json|all]
//                [--corpus DIR]
//       Run N mutate-and-parse iterations per parser. Any contract
//       violation (anything but success or std::runtime_error) is
//       minimized and, with --corpus, written there as a reproducer.
//       Exit 1 if any violation occurred.
//
//   capture_fuzz --replay DIR
//       Feed every file in DIR to all three parsers under both default
//       and fuzzing ParseLimits; exit 1 on any contract violation. This
//       is the regression leg that runs over tests/fuzz_corpus/.
//
//   capture_fuzz --fault-inject [--seed S]
//       Apply the paper's section 3 filter-error taxonomy (drops,
//       additions, resequencing, time travel) plus the middlebox-tampering
//       classes (forged RST, TTL-anomalous injection, payload-mangled
//       retransmission) to a written capture and assert the corresponding
//       registered calibration detector fires.
//
//   capture_fuzz --write-regressions DIR
//       Emit the hand-built reproducers for the historical parser bugs
//       plus a spread of deterministic mutants (used to generate
//       tests/fuzz_corpus/).
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/calibration.hpp"
#include "fuzz/fault_inject.hpp"
#include "fuzz/fuzzer.hpp"
#include "tcp/session.hpp"
#include "trace/pcap_io.hpp"
#include "util/rng.hpp"

namespace {

using tcpanaly::fuzz::Bytes;
using tcpanaly::fuzz::InputFormat;

void put32(Bytes& b, std::uint32_t v) {
  b.push_back(static_cast<std::uint8_t>(v & 0xff));
  b.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
  b.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
  b.push_back(static_cast<std::uint8_t>((v >> 24) & 0xff));
}

void put16(Bytes& b, std::uint16_t v) {
  b.push_back(static_cast<std::uint8_t>(v & 0xff));
  b.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
}

Bytes pcap_header(std::uint32_t snaplen = 65535) {
  Bytes b;
  put32(b, 0xa1b2c3d4);
  put16(b, 2);
  put16(b, 4);
  put32(b, 0);
  put32(b, 0);
  put32(b, snaplen);
  put32(b, 1);  // Ethernet
  return b;
}

// The cap_len-lie reproducer: a record header claiming a ~4 GB frame.
// Before the ParseLimits fix this forced read_bytes to resize its buffer
// to whatever the file said.
Bytes regress_pcap_caplen_lie() {
  Bytes b = pcap_header();
  put32(b, 800000000);  // ts_sec
  put32(b, 0);          // ts_usec
  put32(b, 0xffffffff); // cap_len: the lie
  put32(b, 0xffffffff); // orig_len
  return b;
}

void pcapng_shb(Bytes& b) {
  put32(b, 0x0a0d0d0a);
  put32(b, 28);
  put32(b, 0x1a2b3c4d);
  put16(b, 1);
  put16(b, 0);
  put32(b, 0xffffffff);
  put32(b, 0xffffffff);
  put32(b, 28);
}

void pcapng_idb(Bytes& b, bool with_tsresol, std::uint8_t tsresol_raw) {
  const std::uint32_t total = with_tsresol ? 32 : 24;
  put32(b, 1);
  put32(b, total);
  put16(b, 1);  // Ethernet
  put16(b, 0);
  put32(b, 65535);
  if (with_tsresol) {
    put16(b, 9);  // if_tsresol
    put16(b, 1);
    b.push_back(tsresol_raw);
    b.push_back(0);
    b.push_back(0);
    b.push_back(0);
    put16(b, 0);  // opt_endofopt
    put16(b, 0);
  }
  put32(b, total);
}

// The EPB wrap reproducer: cap_len = 0xFFFFFFF0, so the old 32-bit check
// `v.size() < 20 + cap_len` wrapped to `v.size() < 4`, passed, and handed
// an out-of-range subspan to the frame decoder.
Bytes regress_pcapng_epb_wrap() {
  Bytes b;
  pcapng_shb(b);
  pcapng_idb(b, false, 0);
  put32(b, 6);           // EPB
  put32(b, 40);          // total length: 20-byte fixed part + 8 data bytes
  put32(b, 0);           // interface
  put32(b, 0);           // ts_hi
  put32(b, 0);           // ts_lo
  put32(b, 0xfffffff0);  // cap_len: wraps the 32-bit bound check
  put32(b, 8);           // orig_len
  for (int i = 0; i < 8; ++i) b.push_back(0x5a);
  put32(b, 40);
  return b;
}

// The tsresol reproducer: a decimal exponent of 20, which the old parser
// accepted (its range check allowed 20..63) and then silently computed as
// 10^19 ticks/sec, scaling every timestamp to garbage. The fixed parser
// falls back to the microsecond default.
Bytes regress_pcapng_tsresol20() {
  Bytes b;
  pcapng_shb(b);
  pcapng_idb(b, true, 20);
  for (std::uint32_t ts : {1000u, 2000u}) {
    put32(b, 6);
    put32(b, 36);  // 20-byte fixed part + 4 data bytes
    put32(b, 0);
    put32(b, 0);
    put32(b, ts);
    put32(b, 4);
    put32(b, 4);
    for (int i = 0; i < 4; ++i) b.push_back(0);
    put32(b, 36);
  }
  return b;
}

void write_file(const std::string& path, const Bytes& data) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) throw std::runtime_error("cannot write " + path);
  std::printf("  wrote %s (%zu bytes)\n", path.c_str(), data.size());
}

int write_regressions(const std::string& dir) {
  std::filesystem::create_directories(dir);
  std::printf("writing regression corpus to %s\n", dir.c_str());
  write_file(dir + "/regress_pcap_caplen_lie.pcap", regress_pcap_caplen_lie());
  write_file(dir + "/regress_pcapng_epb_wrap.pcapng", regress_pcapng_epb_wrap());
  write_file(dir + "/regress_pcapng_tsresol20.pcapng", regress_pcapng_tsresol20());
  // A deterministic spread of mutants per format, so the corpus also
  // covers the mutation classes themselves.
  for (const InputFormat fmt :
       {InputFormat::kPcap, InputFormat::kPcapng, InputFormat::kJson}) {
    const auto seeds = tcpanaly::fuzz::seed_inputs(fmt);
    for (std::uint64_t k = 0; k < 4; ++k) {
      tcpanaly::util::Rng rng(0xC0FFEE00 + k);
      Bytes data = seeds[k % seeds.size()];
      for (int s = 0; s < 2; ++s)
        data = tcpanaly::fuzz::mutate(data, fmt, rng).data;
      write_file(dir + "/mutant_" + tcpanaly::fuzz::to_string(fmt) + "_" +
                     std::to_string(k) + ".bin",
                 data);
    }
  }
  return 0;
}

int replay_dir(const std::string& dir) {
  std::size_t files = 0, violations = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    Bytes data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    ++files;
    for (const InputFormat fmt :
         {InputFormat::kPcap, InputFormat::kPcapng, InputFormat::kJson}) {
      for (const auto& limits : {tcpanaly::util::ParseLimits{},
                                 tcpanaly::util::ParseLimits::fuzzing()}) {
        const auto check = tcpanaly::fuzz::check_parse(fmt, data, limits);
        if (check.outcome == tcpanaly::fuzz::ParseOutcome::kContractViolation) {
          ++violations;
          std::printf("VIOLATION %s via %s: %s\n", entry.path().c_str(),
                      tcpanaly::fuzz::to_string(fmt), check.error.c_str());
        }
      }
    }
  }
  std::printf("replay: %zu files x 3 parsers x 2 limit profiles, %zu violations\n",
              files, violations);
  if (files == 0) {
    std::printf("replay: no files found in %s\n", dir.c_str());
    return 1;
  }
  return violations ? 1 : 0;
}

int fault_inject(std::uint64_t seed) {
  using tcpanaly::core::calibrate;
  int failures = 0;
  // A clean, loss-free but *window-limited* session: the offered window
  // (4 KB) is far below the path's bandwidth-delay product, so the sender
  // stalls on the window and every window-update ack liberates data --
  // the situation where filter resequencing produces the paper's
  // data-before-liberating-ack contradiction.
  tcpanaly::tcp::SessionConfig cfg = tcpanaly::tcp::default_session();
  cfg.sender.transfer_bytes = 64 * 1024;
  cfg.receiver.recv_buffer = 4 * 1024;
  cfg.seed = 7;
  std::ostringstream capture;
  tcpanaly::trace::write_pcap(capture,
                              tcpanaly::tcp::run_session(cfg).sender_trace);
  const std::string capture_str = capture.str();
  const Bytes base(capture_str.begin(), capture_str.end());

  auto read_back = [](const Bytes& bytes) {
    std::istringstream in(std::string(bytes.begin(), bytes.end()));
    return tcpanaly::trace::read_pcap(in).trace;
  };
  auto report = [&](const char* name, bool fired, const char* detail) {
    std::printf("  %-14s %s  (%s)\n", name, fired ? "DETECTED" : "MISSED", detail);
    if (!fired) ++failures;
  };

  std::printf("fault injection (paper sec. 3 taxonomy, seed %llu):\n",
              static_cast<unsigned long long>(seed));
  tcpanaly::util::Rng rng(seed);
  tcpanaly::fuzz::FaultSummary sum;

  const auto dropped = tcpanaly::fuzz::inject_drops(base, 0.25, rng, &sum);
  const auto drop_cal = calibrate(read_back(dropped));
  report("drops", drop_cal.drops.drops_detected(),
         (std::to_string(sum.dropped) + " records dropped, " +
          std::to_string(drop_cal.drops.findings.size()) + " findings")
             .c_str());

  // The duplication detector demands *systematic* doubling (the IRIX
  // artifact duplicates everything), so duplicate every record.
  const auto added = tcpanaly::fuzz::inject_additions(
      base, tcpanaly::fuzz::pcap_records(base).size(), rng, &sum);
  const auto add_cal = calibrate(read_back(added));
  report("additions", !add_cal.duplication.duplicate_indices.empty(),
         (std::to_string(sum.added) + " copies added, " +
          std::to_string(add_cal.duplication.duplicate_indices.size()) + " flagged")
             .c_str());

  const auto reseq = tcpanaly::fuzz::inject_resequencing(base, 4, rng, &sum);
  const auto reseq_cal = calibrate(read_back(reseq));
  report("resequencing", reseq_cal.resequencing.ordering_untrustworthy(),
         (std::to_string(sum.resequenced) + " swaps, " +
          std::to_string(reseq_cal.resequencing.instances.size()) + " instances")
             .c_str());

  const auto warped = tcpanaly::fuzz::inject_time_travel(base, 2, rng, &sum);
  const auto warp_cal = calibrate(read_back(warped));
  report("time-travel", warp_cal.time_travel.clock_untrustworthy(),
         (std::to_string(sum.time_travel) + " jumps, " +
          std::to_string(warp_cal.time_travel.instances.size()) + " instances")
             .c_str());

  // The tampering mutators assert against the registry verdict vector, not
  // just the component report: the detector must both fire AND be wired
  // into the flow's per-detector verdicts under its stable ID.
  auto fails = [](const tcpanaly::core::CalibrationReport& cal, const char* id) {
    const auto* r = cal.find(id);
    return r && r->verdict == tcpanaly::core::Verdict::kFail;
  };

  const auto forged = tcpanaly::fuzz::inject_forged_rst(base, rng, &sum);
  const auto rst_cal = calibrate(read_back(forged));
  report("forged-rst", fails(rst_cal, "TAMPER-forged-rst"),
         (std::to_string(sum.forged_rsts) + " forged, " +
          std::to_string(rst_cal.tampering.forged_rsts.size()) + " flagged")
             .c_str());

  const auto ttl = tcpanaly::fuzz::inject_ttl_anomaly(base, rng, &sum);
  const auto ttl_cal = calibrate(read_back(ttl));
  report("ttl-inject", fails(ttl_cal, "TAMPER-ttl-ipid-inject"),
         (std::to_string(sum.ttl_anomalies) + " injected, " +
          std::to_string(ttl_cal.tampering.ttl_anomalies.size()) + " flagged")
             .c_str());

  const auto mangled = tcpanaly::fuzz::inject_payload_mangle(base, rng, &sum);
  const auto retx_cal = calibrate(read_back(mangled));
  report("mangled-retx", fails(retx_cal, "TAMPER-inconsistent-retx"),
         (std::to_string(sum.payload_mangles) + " mangled, " +
          std::to_string(retx_cal.tampering.inconsistent_retx.size()) + " flagged")
             .c_str());

  // Control: the unmangled capture must calibrate clean -- every registry
  // detector PASS or not-exercised -- or the positives above mean nothing.
  const auto clean_cal = calibrate(read_back(base));
  report("control-clean", clean_cal.trustworthy(), "unmangled capture trustworthy");

  return failures ? 1 : 0;
}

int run_fuzz(std::uint64_t iterations, std::uint64_t seed, const std::string& parser,
             const std::string& corpus_dir) {
  int rc = 0;
  for (const InputFormat fmt :
       {InputFormat::kPcap, InputFormat::kPcapng, InputFormat::kJson}) {
    if (parser != "all" && parser != tcpanaly::fuzz::to_string(fmt)) continue;
    tcpanaly::fuzz::FuzzOptions opts;
    opts.seed = seed;
    opts.iterations = iterations;
    opts.corpus_dir = corpus_dir;
    const auto stats = tcpanaly::fuzz::fuzz_parser(fmt, opts);
    std::printf("%-7s %llu iterations: %llu accepted, %llu rejected, %zu violations\n",
                tcpanaly::fuzz::to_string(fmt),
                static_cast<unsigned long long>(stats.iterations),
                static_cast<unsigned long long>(stats.accepted),
                static_cast<unsigned long long>(stats.rejected),
                stats.failures.size());
    for (const auto& f : stats.failures) {
      std::printf("  VIOLATION iter %llu [%s]: %s (%zu-byte repro%s%s)\n",
                  static_cast<unsigned long long>(f.iteration), f.mutations.c_str(),
                  f.error.c_str(), f.reproducer.size(), f.path.empty() ? "" : " -> ",
                  f.path.c_str());
      rc = 1;
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t iterations = 10'000;
  std::uint64_t seed = 1;
  std::string parser = "all";
  std::string corpus_dir;
  std::string replay;
  std::string regressions;
  bool do_fault_inject = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--iterations") iterations = std::stoull(value());
    else if (arg == "--seed") seed = std::stoull(value());
    else if (arg == "--parser") parser = value();
    else if (arg == "--corpus") corpus_dir = value();
    else if (arg == "--replay") replay = value();
    else if (arg == "--write-regressions") regressions = value();
    else if (arg == "--fault-inject") do_fault_inject = true;
    else {
      std::fprintf(stderr,
                   "usage: capture_fuzz [--iterations N] [--seed S] "
                   "[--parser pcap|pcapng|json|all] [--corpus DIR] | --replay DIR | "
                   "--fault-inject | --write-regressions DIR\n");
      return 2;
    }
  }

  try {
    if (!regressions.empty()) return write_regressions(regressions);
    if (!replay.empty()) return replay_dir(replay);
    if (do_fault_inject) return fault_inject(seed);
    return run_fuzz(iterations, seed, parser, corpus_dir);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "capture_fuzz: %s\n", e.what());
    return 1;
  }
}
