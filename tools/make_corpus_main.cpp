// make_corpus: generate a labeled pcap trace corpus on disk.
//
// The reproduction's stand-in for the paper's NPD-style measurement
// campaign: a sweep of bulk transfers per implementation over a grid of
// path conditions, each written out as sender-side and receiver-side pcap
// files that tcpanaly (and tcpdump/wireshark) can open. Ground truth per
// file lands in two manifests: manifest.tsv (grep/awk-able) and
// manifest.json (the report subsystem's schema, one entry per trace with
// the full scenario parameters).
//
// Alongside the simulated sweep, the conformance scenario set is always
// written: for every requirement in core::requirement_registry(), one
// scripted trace that violates exactly that requirement and one that
// exercises it and conforms (conf_*.pcap). Their manifest.json entries
// carry `conformance_scenario` (the scenario name) and, on violating
// traces, `violates` (the requirement ID), so the tier-1 conformance leg
// keys off the manifest instead of parsing file names.
//
// Usage:
//   make_corpus <output-dir> [--impl <name>] [--seeds N] [--transfer BYTES]
//               [--jobs N] [--skip-conformance]
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "corpus/corpus.hpp"
#include "corpus/naming.hpp"
#include "netsim/conformance_scenarios.hpp"
#include "netsim/tampering_scenarios.hpp"
#include "report/report.hpp"
#include "tcp/profiles.hpp"
#include "trace/pcap_io.hpp"

using namespace tcpanaly;

int main(int argc, char** argv) {
  std::string out_dir;
  std::string only_impl;
  bool skip_conformance = false;
  corpus::CorpusOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--impl" && i + 1 < argc) {
      only_impl = argv[++i];
    } else if (arg == "--skip-conformance") {
      skip_conformance = true;
    } else if (arg == "--seeds" && i + 1 < argc) {
      opts.seeds_per_cell = std::atoi(argv[++i]);
    } else if (arg == "--transfer" && i + 1 < argc) {
      opts.transfer_bytes = static_cast<std::uint32_t>(std::atol(argv[++i]));
    } else if (arg == "--jobs" && i + 1 < argc) {
      opts.jobs = std::atoi(argv[++i]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr,
                   "usage: %s <output-dir> [--impl <name>] [--seeds N] "
                   "[--transfer BYTES] [--jobs N] [--skip-conformance]\n",
                   argv[0]);
      return 2;
    } else {
      out_dir = arg;
    }
  }
  if (out_dir.empty()) {
    std::fprintf(stderr, "usage: %s <output-dir> [--impl <name>] [--seeds N]\n", argv[0]);
    return 2;
  }

  std::filesystem::create_directories(out_dir);
  std::ofstream manifest(out_dir + "/manifest.tsv");
  manifest << "file\trole\timplementation\tloss\towd_ms\trate_Bps\tseed\tcompleted\n";
  report::Json traces = report::Json::array();

  std::vector<tcp::TcpProfile> impls;
  if (only_impl.empty()) {
    impls = tcp::main_study_profiles();
  } else {
    auto p = tcp::find_profile(only_impl);
    if (!p) {
      std::fprintf(stderr, "unknown implementation: '%s'\n", only_impl.c_str());
      return 1;
    }
    impls.push_back(std::move(*p));
  }

  std::size_t files = 0;
  for (const auto& impl : impls) {
    int k = 0;
    for (const auto& entry : corpus::generate_corpus(impl, opts)) {
      const std::string base =
          out_dir + "/" + corpus::slug(impl.name) + "_" + std::to_string(k++);
      const auto& p = entry.params;
      auto emit = [&](const char* role, const trace::Trace& tr) {
        const std::string path = base + "_" + role + ".pcap";
        trace::write_pcap_file(path, tr);
        manifest << path << '\t' << role << '\t' << impl.name << '\t' << p.loss_prob
                 << '\t' << p.one_way_delay.count() / 1000 << '\t'
                 << p.rate_bytes_per_sec << '\t' << p.seed << '\t'
                 << (entry.result.completed ? 1 : 0) << '\n';
        report::Json scenario = report::Json::object();
        scenario.set("loss_prob", p.loss_prob);
        scenario.set("one_way_delay_us", p.one_way_delay.count());
        scenario.set("rate_Bps", p.rate_bytes_per_sec);
        scenario.set("transfer_bytes", p.transfer_bytes);
        scenario.set("seed", p.seed);
        report::Json e = report::Json::object();
        e.set("file", path);
        e.set("vantage", role);
        e.set("implementation", impl.name);
        e.set("scenario", std::move(scenario));
        e.set("completed", entry.result.completed);
        traces.push_back(std::move(e));
        ++files;
      };
      emit("snd", entry.result.sender_trace);
      emit("rcv", entry.result.receiver_trace);
    }
  }

  if (!skip_conformance) {
    for (const auto& s : sim::conformance_scenarios()) {
      const char* role = s.receiver_vantage ? "rcv" : "snd";
      const std::string path =
          out_dir + "/" + s.name + "_" + role + ".pcap";
      trace::write_pcap_file(path, sim::make_conformance_trace(s));
      // TSV columns keep their shape; the scripted traces have no loss/
      // delay/rate scenario, so those cells are zero.
      manifest << path << '\t' << role << '\t' << s.name << "\t0\t0\t0\t0\t1\n";
      report::Json e = report::Json::object();
      e.set("file", path);
      e.set("vantage", role);
      e.set("conformance_scenario", s.name);
      if (s.violate) e.set("violates", s.requirement_id);
      e.set("completed", true);
      traces.push_back(std::move(e));
      ++files;
    }
  }

  if (!skip_conformance) {
    // Calibration scenario set: for every detector in the calibration
    // registry, one scripted trace that trips exactly that detector and
    // one that exercises it and stays clean (cal_*/tamper_*.pcap). Their
    // manifest entries carry `calibration_scenario` (the targeted
    // detector ID) and `trips`, so the tier-1 tampering leg keys off the
    // manifest instead of parsing file names.
    for (const auto& s : sim::tampering_scenarios()) {
      const char* role = s.receiver_vantage ? "rcv" : "snd";
      const std::string path = out_dir + "/" + s.name + "_" + role + ".pcap";
      trace::write_pcap_file(path, sim::make_tampering_trace(s));
      manifest << path << '\t' << role << '\t' << s.name << "\t0\t0\t0\t0\t1\n";
      report::Json e = report::Json::object();
      e.set("file", path);
      e.set("vantage", role);
      e.set("calibration_scenario", s.detector_id);
      e.set("trips", s.trips);
      e.set("completed", true);
      traces.push_back(std::move(e));
      ++files;
    }
  }

  report::Json doc = report::document_header("corpus_manifest");
  doc.set("traces", std::move(traces));
  std::ofstream json_manifest(out_dir + "/manifest.json");
  json_manifest << doc.dump(2) << '\n';
  json_manifest.close();
  if (!json_manifest) {
    std::fprintf(stderr, "%s/manifest.json: write failed\n", out_dir.c_str());
    return 1;
  }
  std::printf("wrote %zu pcap files + manifest.tsv + manifest.json to %s\n", files,
              out_dir.c_str());
  return 0;
}
